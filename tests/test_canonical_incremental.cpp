// Property suite for the incremental canonical-hash machinery: after every
// apply/undo step of any trajectory, the incrementally maintained hash must
// equal fnv1a(canonicalText(p)) — the exact value memo tables, witness files
// and telemetry key on. Covers every Table-3 kernel crossed with every
// applicable transform (single-step exhaustive) and with seeded random
// trajectories (multi-step, History push/undo + DeltaContext hash/undo),
// plus the conservative-fallback and header-only paths.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "ir/canonical.h"
#include "ir/incremental.h"
#include "ir/walk.h"
#include "kernels/kernels.h"
#include "machines/machine.h"
#include "search/delta.h"
#include "support/common.h"
#include "support/rng.h"
#include "transform/history.h"
#include "transform/transform.h"

namespace perfdojo::ir {
namespace {

using transform::Action;
using transform::History;
using transform::Location;
using transform::MachineCaps;
using transform::Transform;

/// The ground truth the whole subsystem is measured against. Spelled out as
/// fnv1a(canonicalText(p)) rather than canonicalHash(p) so the property does
/// not become a tautology if canonicalHash is ever rerouted through the
/// incremental path.
std::uint64_t groundTruth(const Program& p) {
  const std::string text = canonicalText(p);
  return fnv1a(text.data(), text.size());
}

const std::vector<const machines::Machine*>& profileMachines() {
  static const std::vector<const machines::Machine*> ms = {
      &machines::xeon(), &machines::gh200(), &machines::snitch()};
  return ms;
}

TEST(IncrementalCanonical, RebuildMatchesFullRenderOnEveryKernel) {
  for (const auto* cat : {&kernels::table3(), &kernels::snitchMicro()}) {
    for (const auto& k : *cat) {
      const Program p = k.build_small();
      IncrementalCanonical inc(p);
      EXPECT_EQ(inc.hash(), groundTruth(p)) << k.label;
      EXPECT_EQ(inc.text(p), canonicalText(p)) << k.label;
      EXPECT_EQ(inc.cachedLines(), nodeCount(p.root) - 1) << k.label;
    }
  }
}

TEST(IncrementalCanonical, NoneSummaryIsAnIdentityUpdate) {
  const Program p = kernels::makeSoftmax(4, 8);
  IncrementalCanonical inc(p);
  const std::uint64_t before = inc.hash();
  inc.update(p, MutationSummary::none());
  EXPECT_EQ(inc.hash(), before);
  EXPECT_EQ(inc.hash(), groundTruth(p));
}

TEST(IncrementalCanonical, ConservativeSummaryRecoversFromAnyStaleness) {
  // A conservative summary must resynchronize even when the tree changed in
  // ways no dirty root describes (here: a whole different program).
  const Program a = kernels::makeSoftmax(4, 8);
  const Program b = kernels::makeMatmul(4, 4, 4);
  IncrementalCanonical inc(a);
  inc.update(b, MutationSummary::conservative());
  EXPECT_EQ(inc.hash(), groundTruth(b));
}

TEST(IncrementalCanonical, EveryApplicableTransformSingleStep) {
  // Table-3 kernels x all three caps profiles x every action the library
  // offers on the base program: one in-place apply, one incremental update,
  // compared against a monolithic re-render. This is the exhaustive
  // single-step core of the tentpole invariant; anything reachable deeper is
  // covered statistically by the trajectory suite below.
  std::size_t checked = 0;
  for (const auto& k : kernels::table3()) {
    const Program p = k.build_small();
    for (const auto* m : profileMachines()) {
      for (const auto& a : transform::allActions(p, m->caps())) {
        Program q = p;
        MutationSummary mut;
        a.transform->applyInPlace(q, a.loc, &mut);
        IncrementalCanonical inc(p);
        inc.update(q, mut);
        ASSERT_EQ(inc.hash(), groundTruth(q))
            << k.label << " on " << m->name() << ": " << a.describe(p);
        ++checked;
      }
    }
  }
  // The cross product must actually exercise the library, not vacuously pass.
  EXPECT_GT(checked, 500u);
}

TEST(IncrementalCanonical, HeaderOnlyMutationsRehashWithoutTreeRender) {
  // Memory transforms touch only the buffer header; their summaries say so.
  const Program p = kernels::makeSoftmax(4, 8);
  const auto& caps = machines::xeon().caps();
  bool exercised = false;
  for (const Transform* t :
       {&transform::setStorage(), &transform::padDim()}) {
    for (const auto& loc : t->findApplicable(p, caps)) {
      Program q = p;
      MutationSummary mut;
      t->applyInPlace(q, loc, &mut);
      EXPECT_FALSE(mut.whole_tree) << t->name();
      EXPECT_TRUE(mut.buffers_changed) << t->name();
      EXPECT_TRUE(mut.dirty_scopes.empty()) << t->name();
      IncrementalCanonical inc(p);
      inc.update(q, mut);
      EXPECT_EQ(inc.hash(), groundTruth(q)) << t->name();
      exercised = true;
    }
  }
  EXPECT_TRUE(exercised);
}

/// A transform that does not override applyInPlace: the base-class fallback
/// must route it through apply() with a conservative summary, keeping every
/// incremental consumer correct by default.
class UnreportedScopeDoubler : public Transform {
 public:
  std::string name() const override { return "test_unreported_doubler"; }
  std::vector<Location> findApplicable(const Program& p,
                                       const MachineCaps&) const override {
    std::vector<Location> locs;
    for (const auto& c : p.root.children)
      if (c.isScope() && c.extent % 2 == 0) {
        Location l;
        l.node = c.id;
        locs.push_back(l);
      }
    return locs;
  }
  Program apply(const Program& p, const Location& loc) const override {
    Program q = p;
    Node* n = findNode(q.root, loc.node);
    require(n && n->isScope(), "test_unreported_doubler: stale location");
    n->extent *= 2;  // not semantics-preserving; irrelevant for hashing
    return q;
  }
};

TEST(IncrementalCanonical, DefaultApplyInPlaceReportsConservatively) {
  const UnreportedScopeDoubler t;
  const Program p = kernels::makeSoftmax(4, 8);
  const auto locs = t.findApplicable(p, machines::xeon().caps());
  ASSERT_FALSE(locs.empty());
  Program q = p;
  MutationSummary mut = MutationSummary::none();
  t.applyInPlace(q, locs[0], &mut);
  EXPECT_TRUE(mut.whole_tree);
  EXPECT_TRUE(mut.buffers_changed);
  IncrementalCanonical inc(p);
  inc.update(q, mut);
  EXPECT_EQ(inc.hash(), groundTruth(q));
}

// --- Random trajectories: the 200-seed property walk per kernel ------------

struct TrajCase {
  std::string label;
};

void PrintTo(const TrajCase& c, std::ostream* os) { *os << c.label; }

class TrajectoryHashP : public ::testing::TestWithParam<TrajCase> {};

TEST_P(TrajectoryHashP, IncrementalHashHoldsAcrossApplyAndUndo) {
  const auto* k = kernels::findKernel(GetParam().label);
  ASSERT_NE(k, nullptr);
  const Program original = k->build_small();
  constexpr int kTrajectories = 200;
  constexpr int kMaxSteps = 5;
  for (int traj = 0; traj < kTrajectories; ++traj) {
    // Rotate the caps profile so GPU/Snitch-only transforms are walked too.
    const auto* m = profileMachines()[traj % profileMachines().size()];
    Rng rng(fnv1a(k->label, 1000003u * traj + 17));
    History h(original);
    search::DeltaContext dctx;
    ASSERT_EQ(h.currentHash(), groundTruth(h.current()));
    for (int step = 0; step < kMaxSteps; ++step) {
      const auto actions = transform::allActions(h.current(), m->caps());
      if (actions.empty()) break;
      const Action& a = actions[rng.uniform(actions.size())];
      // Delta view: the neighbor's hash, priced without a tree copy, then
      // undone — the context must land back exactly on the base hash.
      dctx.bind(h.current());
      const std::uint64_t base_hash = dctx.baseHash();
      ASSERT_EQ(base_hash, h.currentHash());
      const std::uint64_t neighbor = dctx.neighborHash(a);
      ASSERT_EQ(dctx.baseHash(), base_hash);
      // A second neighbor from the same bind proves the first undo restored
      // the scratch tree exactly (the context has no internal tripwire —
      // this is its correctness coverage).
      const Action& b = actions[rng.uniform(actions.size())];
      ASSERT_EQ(dctx.neighborHash(b), groundTruth(b.apply(h.current())))
          << k->label << " traj " << traj << " step " << step << " on "
          << m->name() << ": stale scratch after undoing "
          << a.transform->name() << ", probing " << b.transform->name();
      // Committed view: History applies in place and updates its hash from
      // the transform's own mutation summary.
      h.push(a);
      const std::uint64_t full = groundTruth(h.current());
      ASSERT_EQ(h.currentHash(), full)
          << k->label << " traj " << traj << " step " << step << " on "
          << m->name() << ": " << a.transform->name();
      ASSERT_EQ(neighbor, full)
          << k->label << " traj " << traj << " step " << step << " on "
          << m->name() << ": delta hash diverged for "
          << a.transform->name();
      // Occasionally back out and verify the undo/replay path re-syncs.
      if (rng.uniform(4) == 0) {
        h.undo();
        ASSERT_EQ(h.currentHash(), groundTruth(h.current()))
            << k->label << " traj " << traj << " undo at step " << step;
      }
    }
  }
}

std::vector<TrajCase> table3Cases() {
  std::vector<TrajCase> cases;
  for (const auto& k : kernels::table3()) cases.push_back({k.label});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Table3, TrajectoryHashP,
                         ::testing::ValuesIn(table3Cases()),
                         [](const auto& info) {
                           std::string n = info.param.label;
                           for (char& c : n)
                             if (!std::isalnum(static_cast<unsigned char>(c)))
                               c = '_';
                           return n;
                         });

}  // namespace
}  // namespace perfdojo::ir
