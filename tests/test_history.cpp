// Non-destructiveness: undo and surgical sequence editing by replay.
#include <gtest/gtest.h>

#include "ir/canonical.h"
#include "kernels/kernels.h"
#include "support/rng.h"
#include "transform/history.h"
#include "verify/verifier.h"

namespace perfdojo::transform {
namespace {

MachineCaps cpuCaps() {
  MachineCaps c;
  c.vector_widths = {4, 8};
  return c;
}

Action pickAction(const ir::Program& p, Rng& rng) {
  auto actions = allActions(p, cpuCaps());
  return actions[rng.uniform(actions.size())];
}

TEST(History, UndoRestoresCanonicalText) {
  History h(kernels::makeSoftmax(4, 8));
  Rng rng(3);
  std::vector<std::string> snapshots = {ir::canonicalText(h.current())};
  for (int i = 0; i < 6; ++i) {
    h.push(pickAction(h.current(), rng));
    snapshots.push_back(ir::canonicalText(h.current()));
  }
  for (int i = 6; i > 0; --i) {
    h.undo();
    EXPECT_EQ(ir::canonicalText(h.current()), snapshots[static_cast<std::size_t>(i - 1)]);
  }
  EXPECT_THROW(h.undo(), Error);
}

TEST(History, EraseMiddleStepReplays) {
  History h(kernels::makeAdd(8, 16));
  Rng rng(5);
  for (int i = 0; i < 5; ++i) h.push(pickAction(h.current(), rng));
  const std::size_t before = h.size();
  // Erase steps until one succeeds (some suffixes depend on earlier steps).
  bool erased = false;
  for (std::size_t i = 0; i < before && !erased; ++i) {
    auto r = h.eraseStep(i);
    if (r.ok) erased = true;
  }
  if (erased) {
    EXPECT_EQ(h.size(), before - 1);
    const auto v = verify::verifyEquivalent(h.original(), h.current());
    EXPECT_TRUE(v.equivalent) << v.detail;
  }
}

TEST(History, FailedEditLeavesStateUntouched) {
  History h(kernels::makeAdd(8, 16));
  // split then vectorize the split loop; erasing the split invalidates the
  // vectorize step, so the edit must fail atomically.
  auto slocs = splitScope().findApplicable(h.current(), cpuCaps());
  Location split_loc;
  for (const auto& l : slocs)
    if (l.param == 8) split_loc = l;
  ASSERT_NE(split_loc.node, ir::kInvalidNode);
  h.push({&splitScope(), split_loc});
  auto vlocs = vectorize().findApplicable(h.current(), cpuCaps());
  ASSERT_FALSE(vlocs.empty());
  h.push({&vectorize(), vlocs[0]});
  const std::string snapshot = ir::canonicalText(h.current());
  auto r = h.eraseStep(0);
  EXPECT_FALSE(r.ok);
  // In the edited sequence the dangling vectorize sits at index 0.
  EXPECT_EQ(r.failed_step, 0u);
  EXPECT_EQ(ir::canonicalText(h.current()), snapshot);
  EXPECT_EQ(h.size(), 2u);
}

TEST(History, InsertAndReplace) {
  History h(kernels::makeSoftmax(4, 8));
  Rng rng(7);
  for (int i = 0; i < 3; ++i) h.push(pickAction(h.current(), rng));
  // Insert a no-op-ish reorder at the front if one applies to the original.
  auto actions = allActions(h.original(), cpuCaps());
  ASSERT_FALSE(actions.empty());
  auto r = h.insertStep(0, actions[0]);
  if (r.ok) {
    EXPECT_EQ(h.size(), 4u);
    const auto v = verify::verifyEquivalent(h.original(), h.current());
    EXPECT_TRUE(v.equivalent) << v.detail;
  }
}

TEST(History, ReplayFromScratchMatchesIncremental) {
  History h(kernels::makeReduceMean(8, 16));
  Rng rng(11);
  for (int i = 0; i < 5; ++i) h.push(pickAction(h.current(), rng));
  History::ReplayResult rr;
  auto p = History::replay(h.original(), h.steps(), rr);
  ASSERT_TRUE(p.has_value());
  EXPECT_TRUE(ir::canonicallyEqual(*p, h.current()));
}

}  // namespace
}  // namespace perfdojo::transform
