// The paper's central guarantee, tested property-style: EVERY location
// returned by EVERY transformation's applicability detection produces a
// numerically equivalent program, on every kernel, and the property still
// holds along random multi-step transformation trajectories.
//
// Set PERFDOJO_SEED=<n> to shift every random choice in this suite; the
// effective seed is printed on failure so a broken run can be replayed with
// the same environment variable.
#include <cstdlib>

#include <gtest/gtest.h>

#include "kernels/kernels.h"
#include "support/rng.h"
#include "transform/transform.h"
#include "verify/verifier.h"

namespace perfdojo::transform {
namespace {

/// Seed override from the environment; 0 (the default) keeps the baked-in
/// per-test seeds so CI stays deterministic.
std::uint64_t envSeed() {
  static const std::uint64_t seed = [] {
    const char* s = std::getenv("PERFDOJO_SEED");
    return s ? std::strtoull(s, nullptr, 10) : 0ull;
  }();
  return seed;
}

struct Target {
  const char* name;
  MachineCaps caps;
};

std::vector<Target> targets() {
  MachineCaps cpu;
  cpu.vector_widths = {4, 8};
  MachineCaps gpu;
  gpu.is_gpu = true;
  gpu.has_parallel = false;
  gpu.warp_size = 32;
  gpu.vector_widths = {2, 4};
  MachineCaps sn;
  sn.vector_widths = {};
  sn.has_parallel = false;
  sn.has_ssr = true;
  sn.has_frep = true;
  return {{"cpu", cpu}, {"gpu", gpu}, {"snitch", sn}};
}

verify::VerifyOptions tolerantOpts() {
  verify::VerifyOptions vo;
  vo.trials = 1;
  vo.rel_tol = 1e-4;  // partial_reduce reassociates floating point
  vo.abs_tol = 1e-7;
  vo.seed += envSeed();
  return vo;
}

class SingleStepP : public ::testing::TestWithParam<std::string> {};

TEST_P(SingleStepP, EveryApplicableActionPreservesSemantics) {
  SCOPED_TRACE(::testing::Message()
               << "PERFDOJO_SEED=" << envSeed() << " (re-export to replay)");
  const auto* k = kernels::findKernel(GetParam());
  ASSERT_NE(k, nullptr);
  const ir::Program p = k->build_small();
  for (const auto& tgt : targets()) {
    const auto actions = allActions(p, tgt.caps);
    for (const auto& a : actions) {
      ir::Program q;
      ASSERT_NO_THROW(q = a.apply(p))
          << tgt.name << " " << a.describe(p) << " threw on its own location";
      const auto r = verify::verifyEquivalent(p, q, tolerantOpts());
      ASSERT_TRUE(r.equivalent)
          << tgt.name << " " << a.describe(p) << ": " << r.detail;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Table3, SingleStepP,
    ::testing::Values("add", "batchnorm_2", "bmm", "conv_1", "layernorm_1",
                      "matmul", "mul", "reducemean", "relu", "relu_ffn",
                      "rmsnorm", "softmax", "swiglu"));

INSTANTIATE_TEST_SUITE_P(SnitchMicro, SingleStepP,
                         ::testing::Values("axpy", "dot", "sum", "gemm",
                                           "conv1d", "norm2"));

class TrajectoryP
    : public ::testing::TestWithParam<std::tuple<std::string, int>> {};

TEST_P(TrajectoryP, RandomWalksStayCorrect) {
  const auto& [label, seed] = GetParam();
  SCOPED_TRACE(::testing::Message()
               << "PERFDOJO_SEED=" << envSeed() << " (re-export to replay)");
  const auto* k = kernels::findKernel(label);
  ASSERT_NE(k, nullptr);
  const ir::Program original = k->build_small();
  for (const auto& tgt : targets()) {
    ir::Program p = original;
    Rng rng(static_cast<std::uint64_t>(seed) * 7919 + 13 + envSeed());
    for (int step = 0; step < 12; ++step) {
      auto actions = allActions(p, tgt.caps);
      if (actions.empty()) break;
      const auto& a = actions[rng.uniform(actions.size())];
      ir::Program q;
      ASSERT_NO_THROW(q = a.apply(p)) << tgt.name << " " << a.describe(p);
      p = std::move(q);
    }
    const auto r = verify::verifyEquivalent(original, p, tolerantOpts());
    ASSERT_TRUE(r.equivalent) << tgt.name << " after random walk: " << r.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Walks, TrajectoryP,
    ::testing::Combine(::testing::Values("softmax", "matmul", "layernorm_1",
                                         "reducemean", "conv_2", "dot"),
                       ::testing::Values(1, 2, 3)));

}  // namespace
}  // namespace perfdojo::transform
