#include <gtest/gtest.h>

#include "dojo/dojo.h"
#include "ir/canonical.h"
#include "kernels/kernels.h"
#include "machines/machine.h"
#include "search/evalcache.h"
#include "support/rng.h"

namespace perfdojo::dojo {
namespace {

TEST(Dojo, MovesAreNonEmptyOnFreshKernel) {
  Dojo d(kernels::makeSoftmax(4, 8), machines::xeon());
  EXPECT_FALSE(d.moves().empty());
  EXPECT_GT(d.runtime(), 0.0);
  EXPECT_DOUBLE_EQ(d.bestRuntime(), d.runtime());
}

TEST(Dojo, PlayUpdatesRuntimeAndBest) {
  DojoOptions opts;
  opts.verify_moves = true;  // paper-style empirical validation per move
  Dojo d(kernels::makeSoftmax(4, 8), machines::xeon(), opts);
  Rng rng(3);
  double best = d.bestRuntime();
  for (int i = 0; i < 10; ++i) {
    auto moves = d.moves();
    ASSERT_FALSE(moves.empty());
    d.play(moves[rng.uniform(moves.size())]);
    EXPECT_LE(d.bestRuntime(), best + 1e-18);
    best = d.bestRuntime();
  }
  EXPECT_EQ(d.steps(), 10u);
}

TEST(Dojo, UndoKeepsBest) {
  Dojo d(kernels::makeReduceMean(8, 16), machines::xeon());
  Rng rng(5);
  for (int i = 0; i < 5; ++i) {
    auto moves = d.moves();
    d.play(moves[rng.uniform(moves.size())]);
  }
  const double best = d.bestRuntime();
  const std::string before_undo = ir::canonicalText(d.bestProgram());
  d.undo();
  d.undo();
  EXPECT_EQ(d.steps(), 3u);
  EXPECT_DOUBLE_EQ(d.bestRuntime(), best);
  EXPECT_EQ(ir::canonicalText(d.bestProgram()), before_undo);
}

TEST(Dojo, RewardIsScaledInverseRuntime) {
  DojoOptions opts;
  opts.reward_scale = 2e-6;
  Dojo d(kernels::makeAdd(8, 8), machines::xeon(), opts);
  EXPECT_DOUBLE_EQ(d.reward(), 2e-6 / d.runtime());
}

TEST(Dojo, GpuGameReachesFasterStates) {
  Dojo d(kernels::makeAdd(1024, 1024), machines::xeon());
  const double t0 = d.runtime();
  // Greedily take the best immediate move a few times.
  for (int i = 0; i < 6; ++i) {
    auto moves = d.moves();
    if (moves.empty()) break;
    double best_rt = d.runtime();
    int best_i = -1;
    for (std::size_t j = 0; j < moves.size(); ++j) {
      const auto q = moves[j].apply(d.program());
      const double rt = d.machine().evaluate(q);
      if (rt < best_rt) {
        best_rt = rt;
        best_i = static_cast<int>(j);
      }
    }
    if (best_i < 0) break;
    d.play(moves[static_cast<std::size_t>(best_i)]);
  }
  EXPECT_LT(d.bestRuntime(), t0);
}

TEST(Dojo, SharedEvalCachePricesRevisitedStatesOnce) {
  // Play a move, undo it, play it again: three of the four state
  // evaluations (initial, after-move, after-undo, after-replay) hit states
  // already priced, so a shared cache records exactly 2 unique programs.
  search::EvalCache cache;
  DojoOptions opts;
  opts.eval_cache = &cache;
  Dojo d(kernels::makeSoftmax(4, 8), machines::xeon(), opts);
  const auto moves = d.moves();
  ASSERT_FALSE(moves.empty());
  const double rt0 = d.runtime();
  d.play(moves[0]);
  const double rt1 = d.runtime();
  d.undo();
  EXPECT_EQ(d.runtime(), rt0);
  d.play(moves[0]);
  EXPECT_EQ(d.runtime(), rt1);
  const auto s = cache.stats();
  EXPECT_EQ(s.requests, 4);
  EXPECT_EQ(s.misses, 2);
  EXPECT_EQ(s.hits, 2);
}

}  // namespace
}  // namespace perfdojo::dojo
