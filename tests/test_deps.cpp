#include <gtest/gtest.h>

#include "ir/builder.h"
#include "ir/walk.h"
#include "kernels/kernels.h"
#include "transform/deps.h"

namespace perfdojo::transform {
namespace {

using ir::Builder;
using ir::DType;
using ir::OpCode;

TEST(Deps, AccumulationDetection) {
  auto p = kernels::makeSum(8);
  auto ops = ir::collectOps(p.root);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_FALSE(opInfo(*ops[0]).is_accumulation);  // init mov
  EXPECT_TRUE(opInfo(*ops[1]).is_accumulation);   // s = add s x
}

TEST(Deps, FmaAccumulationDetection) {
  auto p = kernels::makeMatmul(2, 3, 4);
  auto ops = ir::collectOps(p.root);
  ASSERT_EQ(ops.size(), 2u);
  EXPECT_TRUE(opInfo(*ops[1]).is_accumulation);
}

TEST(Deps, MayAliasBufferGranularity) {
  auto p = kernels::makeAdd(4, 4);
  const auto ops = ir::collectOps(p.root);
  const auto info = opInfo(*ops[0]);
  // x and z are different buffers.
  EXPECT_FALSE(mayAlias(p, info.write, info.reads[0]));
  // z vs z same indices.
  EXPECT_TRUE(mayAlias(p, info.write, info.write));
}

TEST(Deps, MayAliasConstDistinct) {
  ir::Access a, b;
  a.array = b.array = "s";
  a.idx = {ir::IndexExpr::constant(0)};
  b.idx = {ir::IndexExpr::constant(1)};
  auto p = kernels::makeSum(8);
  // Make a two-element variant for the check.
  p.findBuffer("s")->shape = {2};
  EXPECT_FALSE(mayAlias(p, a, b));
}

TEST(Deps, SharedBufferArraysConflict) {
  Builder b("k");
  b.buffer("t", DType::F32, {4}, ir::MemSpace::Heap, {"a", "c"});
  ir::Program p;
  {
    b.buffer("x", DType::F32, {4});
    b.input("x");
    b.beginScope(4);
    b.op(OpCode::Mov, b.atDepths("a", {0}), {Builder::arr(b.atDepths("x", {0}))});
    b.endScope();
    p = b.finish();
  }
  ir::Access ra, rc;
  ra.array = "a";
  rc.array = "c";
  ra.idx = {ir::IndexExpr::constant(0)};
  rc.idx = {ir::IndexExpr::constant(1)};
  EXPECT_TRUE(mayAlias(p, ra, rc));  // conservative: same buffer
}

TEST(Deps, IterationsIndependentElementwise) {
  auto p = kernels::makeAdd(4, 8);
  auto scopes = ir::collectScopes(p.root);
  EXPECT_TRUE(iterationsIndependent(p, *scopes[0]));
  EXPECT_TRUE(iterationsIndependent(p, *scopes[1]));
}

TEST(Deps, IterationsNotIndependentForReduction) {
  auto p = kernels::makeReduceMean(4, 8);
  auto scopes = ir::collectScopes(p.root);
  // The inner d-loop accumulates into m[i]: not parallelizable.
  bool found_dependent = false;
  for (const auto* s : scopes) {
    if (s->extent == 8 && !iterationsIndependent(p, *s)) found_dependent = true;
  }
  EXPECT_TRUE(found_dependent);
}

TEST(Deps, InterchangeLegalForMatmulOuterPair) {
  auto p = kernels::makeMatmul(4, 5, 6);
  auto scopes = ir::collectScopes(p.root);
  // m-scope (extent 4) has single child n-scope (extent 6).
  EXPECT_TRUE(interchangeLegal(p, *scopes[0], *scopes[1]));
}

TEST(Deps, FusionLegalSameIndex) {
  // loop i: t[i] = x[i]*2 ; loop i: y[i] = t[i]+1  -> fusable
  Builder b("k");
  b.buffer("x", DType::F32, {8}).buffer("t", DType::F32, {8});
  b.buffer("y", DType::F32, {8});
  b.input("x").output("y");
  auto s1 = b.beginScope(8);
  b.op(OpCode::Mul, b.atDepths("t", {0}),
       {Builder::arr(b.atDepths("x", {0})), Builder::cst(2.0)});
  b.endScope();
  auto s2 = b.beginScope(8);
  b.op(OpCode::Add, b.atDepths("y", {0}),
       {Builder::arr(b.atDepths("t", {0})), Builder::cst(1.0)});
  b.endScope();
  auto p = b.finish();
  const ir::Node* n1 = ir::findNode(p.root, s1);
  const ir::Node* n2 = ir::findNode(p.root, s2);
  EXPECT_TRUE(fusionLegal(p, n1->children, s1, n2->children, s2));
}

TEST(Deps, FusionIllegalScalarCarried) {
  // loop i: s[0] += x[i] ; loop i: y[i] = x[i]/s[0]  -> NOT fusable
  Builder b("k");
  b.buffer("x", DType::F32, {8}).buffer("s", DType::F32, {1});
  b.buffer("y", DType::F32, {8});
  b.input("x").output("y");
  auto s1 = b.beginScope(8);
  b.op(OpCode::Add, b.at("s", {ir::IndexExpr::constant(0)}),
       {Builder::arr(b.at("s", {ir::IndexExpr::constant(0)})),
        Builder::arr(b.atDepths("x", {0}))});
  b.endScope();
  auto s2 = b.beginScope(8);
  b.op(OpCode::Div, b.atDepths("y", {0}),
       {Builder::arr(b.atDepths("x", {0})),
        Builder::arr(b.at("s", {ir::IndexExpr::constant(0)}))});
  b.endScope();
  auto p = b.finish();
  const ir::Node* n1 = ir::findNode(p.root, s1);
  const ir::Node* n2 = ir::findNode(p.root, s2);
  EXPECT_FALSE(fusionLegal(p, n1->children, s1, n2->children, s2));
}

TEST(Deps, FusionIllegalShiftedIndex) {
  // loop i: t[i] = x[i] ; loop i: y[i] = t[(i+1) % 8]-ish shifted read.
  Builder b("k");
  b.buffer("x", DType::F32, {9}).buffer("t", DType::F32, {9});
  b.buffer("y", DType::F32, {8});
  b.input("x").output("y");
  auto s1 = b.beginScope(8);
  b.op(OpCode::Mov, b.atDepths("t", {0}), {Builder::arr(b.atDepths("x", {0}))});
  b.endScope();
  auto s2 = b.beginScope(8);
  b.op(OpCode::Mov, b.atDepths("y", {0}),
       {Builder::arr(b.at("t", {ir::IndexExpr::add(b.it(0), ir::IndexExpr::constant(1))}))});
  b.endScope();
  auto p = b.finish();
  const ir::Node* n1 = ir::findNode(p.root, s1);
  const ir::Node* n2 = ir::findNode(p.root, s2);
  EXPECT_FALSE(fusionLegal(p, n1->children, s1, n2->children, s2));
}

TEST(Deps, OpsSwappableIndependent) {
  Builder b("k");
  b.buffer("x", DType::F32, {4}).buffer("y", DType::F32, {4});
  b.buffer("u", DType::F32, {4}).buffer("v", DType::F32, {4});
  b.input("x").input("y").output("u").output("v");
  b.beginScope(4);
  b.op(OpCode::Mov, b.atDepths("u", {0}), {Builder::arr(b.atDepths("x", {0}))});
  b.op(OpCode::Mov, b.atDepths("v", {0}), {Builder::arr(b.atDepths("y", {0}))});
  b.endScope();
  auto p = b.finish();
  auto ops = ir::collectOps(p.root);
  EXPECT_TRUE(opsSwappable(p, *ops[0], *ops[1]));
}

TEST(Deps, OpsNotSwappableWhenChained) {
  Builder b("k");
  b.buffer("x", DType::F32, {4}).buffer("t", DType::F32, {4});
  b.buffer("y", DType::F32, {4});
  b.input("x").output("y");
  b.beginScope(4);
  b.op(OpCode::Mul, b.atDepths("t", {0}),
       {Builder::arr(b.atDepths("x", {0})), Builder::cst(2.0)});
  b.op(OpCode::Mov, b.atDepths("y", {0}), {Builder::arr(b.atDepths("t", {0}))});
  b.endScope();
  auto p = b.finish();
  auto ops = ir::collectOps(p.root);
  EXPECT_FALSE(opsSwappable(p, *ops[0], *ops[1]));
}

}  // namespace
}  // namespace perfdojo::transform
