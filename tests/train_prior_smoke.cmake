# End-to-end smoke of the learned-prior loop through the shipped binary.
#
#   optimize --trace-programs  ->  train-prior (twice: bit-identical models)
#                              ->  optimize --prior --prior-topk 6
#                                  (gate engages: neighbors filtered)
#
# Driven as `cmake -DPERFDOJO=<bin> -DWORK=<dir> -P train_prior_smoke.cmake`
# so it runs identically under ctest and in CI.
if(NOT PERFDOJO OR NOT WORK)
  message(FATAL_ERROR "usage: cmake -DPERFDOJO=<perfdojo> -DWORK=<dir> -P train_prior_smoke.cmake")
endif()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}")
  endif()
endfunction()

# Record a program-carrying search trace on the edges structure.
run_checked(${PERFDOJO} optimize --kernel softmax --machine xeon
            --method search --structure edges --budget 150
            --trace-programs 1 --trace-out ${WORK}/trace.jsonl
            OUTPUT_QUIET ERROR_QUIET)

# Train twice from the same trace: the model file must be bit-identical
# (seeded init + seeded split; no call-order or clock dependence).
run_checked(${PERFDOJO} train-prior --trace-in ${WORK}/trace.jsonl
            --model-out ${WORK}/model_a.json ERROR_QUIET)
run_checked(${PERFDOJO} train-prior --trace-in ${WORK}/trace.jsonl
            --model-out ${WORK}/model_b.json ERROR_QUIET)
file(READ ${WORK}/model_a.json model_a)
file(READ ${WORK}/model_b.json model_b)
if(NOT model_a STREQUAL model_b)
  message(FATAL_ERROR "train-prior is not deterministic: model files differ")
endif()

# Search with the prior filtering engaged: the stats line must report a
# non-zero filtered count.
run_checked(${PERFDOJO} optimize --kernel softmax --machine xeon
            --method search --structure edges --budget 150
            --prior ${WORK}/model_a.json --prior-topk 6
            OUTPUT_QUIET ERROR_FILE ${WORK}/prior_stats.txt)
file(READ ${WORK}/prior_stats.txt stats)
if(NOT stats MATCHES "prior stats: [1-9][0-9]* neighbors filtered")
  message(FATAL_ERROR "prior gate did not engage: ${stats}")
endif()

message(STATUS "train-prior smoke passed: deterministic model, gate engaged")
