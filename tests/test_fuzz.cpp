// The differential-fuzzing subsystem: oracle layers, witness serialization,
// delta-debugging minimizer, corpus replay — and the meta-test the subsystem
// exists for: a deliberately mis-detected transformation (injected through
// the transform-list hook) must be caught by the oracle, shrunk to a minimal
// trajectory, and reproduce deterministically from its witness file.
#include <cstdio>
#include <filesystem>

#include <gtest/gtest.h>

#include "fuzz/fuzzer.h"
#include "fuzz/minimize.h"
#include "fuzz/oracle.h"
#include "fuzz/witness.h"
#include "ir/canonical.h"
#include "ir/walk.h"
#include "kernels/kernels.h"
#include "machines/machine.h"
#include "search/pass.h"
#include "support/common.h"
#include "support/rng.h"
#include "verify/verifier.h"

namespace perfdojo::fuzz {
namespace {

using transform::Action;
using transform::Location;
using transform::MachineCaps;
using transform::Step;
using transform::Transform;

// --- Test-only broken transforms (the injected mis-detections) -------------

/// Claims applicability at every Mul op and "applies" by rewriting it to Add:
/// a semantics break that the interp layer must catch.
class EvilMulToAdd : public Transform {
 public:
  std::string name() const override { return "evil_mul_to_add"; }
  std::vector<Location> findApplicable(const ir::Program& p,
                                       const MachineCaps&) const override {
    std::vector<Location> locs;
    for (const auto* op : ir::collectOps(p.root))
      if (op->op == ir::OpCode::Mul) {
        Location l;
        l.node = op->id;
        locs.push_back(l);
      }
    return locs;
  }
  ir::Program apply(const ir::Program& p, const Location& loc) const override {
    ir::Program q = p;
    ir::Node* n = ir::findNode(q.root, loc.node);
    require(n && n->isOp() && n->op == ir::OpCode::Mul,
            "evil_mul_to_add: stale location");
    n->op = ir::OpCode::Add;
    return q;
  }
};

/// Offers a location whose apply always throws: the applicability detection
/// and the application disagree, which the Apply layer must catch.
class EvilOfferThenThrow : public Transform {
 public:
  std::string name() const override { return "evil_offer_then_throw"; }
  std::vector<Location> findApplicable(const ir::Program& p,
                                       const MachineCaps&) const override {
    Location l;
    l.node = p.root.id;
    return {l};
  }
  ir::Program apply(const ir::Program&, const Location&) const override {
    fail("evil_offer_then_throw: apply rejects its own offered location");
  }
};

/// Annotates a loop (interp-neutral, round-trips fine) but *reports no
/// mutation*: the incrementally maintained canonical hash silently goes
/// stale — the under-reporting bug class only the incremental-hash layer
/// can catch, because every other layer sees a perfectly healthy program.
class EvilSilentAnnotate : public Transform {
 public:
  std::string name() const override { return "evil_silent_annotate"; }
  std::vector<Location> findApplicable(const ir::Program& p,
                                       const MachineCaps&) const override {
    std::vector<Location> locs;
    collect(p.root, locs);
    return locs;
  }
  ir::Program apply(const ir::Program& p, const Location& loc) const override {
    ir::Program q = p;
    mutate(q, loc);
    return q;
  }
  void applyInPlace(ir::Program& q, const Location& loc,
                    ir::MutationSummary* mut, bool) const override {
    mutate(q, loc);
    if (mut) *mut = ir::MutationSummary::none();  // the lie under test
  }

 private:
  static void collect(const ir::Node& n, std::vector<Location>& locs) {
    for (const auto& c : n.children) {
      if (!c.isScope()) continue;
      if (c.anno == ir::LoopAnno::None) {
        Location l;
        l.node = c.id;
        locs.push_back(l);
      }
      collect(c, locs);
    }
  }
  static void mutate(ir::Program& q, const Location& loc) {
    ir::Node* n = ir::findNode(q.root, loc.node);
    require(n && n->isScope() && n->anno == ir::LoopAnno::None,
            "evil_silent_annotate: stale location");
    n->anno = ir::LoopAnno::Unroll;
  }
};

/// Re-creates a scope node under a fresh NodeId (rewriting the subtree's
/// iterator references so the program stays valid) while leaving the
/// canonical text byte-identical — ids never print; iterators render as
/// positional `{depth}` — and reports no mutation. Interp, round-trip, the
/// incremental hash, the cache and both delta backends all stay healthy —
/// only the action-set layer, comparing the maintained index
/// element-for-element against a fresh enumeration, sees the stale
/// NodeId-bearing locations.
class EvilRenumberScope : public Transform {
 public:
  std::string name() const override { return "evil_renumber_scope"; }
  std::vector<Location> findApplicable(const ir::Program& p,
                                       const MachineCaps&) const override {
    std::vector<Location> locs;
    collect(p.root, locs);
    return locs;
  }
  ir::Program apply(const ir::Program& p, const Location& loc) const override {
    ir::Program q = p;
    mutate(q, loc);
    return q;
  }
  void applyInPlace(ir::Program& q, const Location& loc,
                    ir::MutationSummary* mut, bool) const override {
    mutate(q, loc);
    if (mut) *mut = ir::MutationSummary::none();  // the lie under test
  }

 private:
  static void collect(const ir::Node& n, std::vector<Location>& locs) {
    for (const auto& c : n.children) {
      if (!c.isScope()) continue;
      Location l;
      l.node = c.id;
      locs.push_back(l);
      collect(c, locs);
    }
  }
  static void rewriteIters(ir::Node& n, ir::NodeId from, ir::NodeId to) {
    if (n.isOp()) {
      const auto sub = [&](ir::IndexExpr& e) {
        e = e.substitute(from, ir::IndexExpr::iter(to));
      };
      for (auto& e : n.out.idx) sub(e);
      for (auto& in : n.ins) {
        if (in.kind == ir::Operand::Kind::Array)
          for (auto& e : in.access.idx) sub(e);
        else if (in.kind == ir::Operand::Kind::Iter)
          sub(in.iter_expr);
      }
    }
    for (auto& c : n.children) rewriteIters(c, from, to);
  }
  static void mutate(ir::Program& q, const Location& loc) {
    ir::Node* n = ir::findNode(q.root, loc.node);
    require(n && n->isScope(), "evil_renumber_scope: stale location");
    const ir::NodeId fresh = q.freshId();
    rewriteIters(*n, n->id, fresh);
    n->id = fresh;
  }
};

const EvilMulToAdd& evilMulToAdd() {
  static const EvilMulToAdd t;
  return t;
}
const EvilOfferThenThrow& evilOfferThenThrow() {
  static const EvilOfferThenThrow t;
  return t;
}
const EvilSilentAnnotate& evilSilentAnnotate() {
  static const EvilSilentAnnotate t;
  return t;
}
const EvilRenumberScope& evilRenumberScope() {
  static const EvilRenumberScope t;
  return t;
}

/// Resolver that also knows the test-only transforms.
const Transform* testResolver(const std::string& name) {
  if (name == evilMulToAdd().name()) return &evilMulToAdd();
  if (name == evilOfferThenThrow().name()) return &evilOfferThenThrow();
  if (name == evilSilentAnnotate().name()) return &evilSilentAnnotate();
  if (name == evilRenumberScope().name()) return &evilRenumberScope();
  return transform::findTransform(name);
}

std::string tempDir(const std::string& leaf) {
  const auto dir = std::filesystem::path(::testing::TempDir()) / leaf;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

/// A short deterministic benign trajectory on `label` under `profile`.
Witness benignWitness(const std::string& label, const std::string& profile,
                      int steps, std::uint64_t seed) {
  const auto* k = kernels::findKernel(label);
  EXPECT_NE(k, nullptr);
  const auto* prof = findProfile(profile);
  EXPECT_NE(prof, nullptr);
  Witness w;
  w.kernel = label;
  w.profile = profile;
  w.seed = seed;
  Rng rng(seed);
  ir::Program p = k->build_small();
  for (int i = 0; i < steps; ++i) {
    const auto actions = transform::allActions(p, prof->caps);
    if (actions.empty()) break;
    const auto& a = actions[rng.uniform(actions.size())];
    p = a.apply(p);
    w.steps.push_back({a.transform, a.loc});
  }
  return w;
}

// --- Serialization ---------------------------------------------------------

TEST(Witness, LocationTextRoundTrips) {
  Location loc;
  loc.node = 42;
  loc.buffer = "acc";
  loc.dim = 1;
  loc.dim2 = 3;
  loc.param = 16;
  loc.space = ir::MemSpace::Stack;
  Location back;
  ASSERT_TRUE(transform::locationFromText(transform::locationToText(loc), back));
  EXPECT_TRUE(loc == back);

  Location minimal;  // all defaults except node
  minimal.node = 7;
  ASSERT_TRUE(
      transform::locationFromText(transform::locationToText(minimal), back));
  EXPECT_TRUE(minimal == back);

  EXPECT_FALSE(transform::locationFromText("node", back));
  EXPECT_FALSE(transform::locationFromText("space=moon", back));
  EXPECT_FALSE(transform::locationFromText("frob=1", back));

  // Out-of-range numerics must be rejected, not saturated: strtoll clamps to
  // INT64_MIN/MAX on overflow, and a forged witness carrying such a value
  // would otherwise silently round-trip to a different location.
  EXPECT_FALSE(transform::locationFromText("node=99999999999999999999", back));
  EXPECT_FALSE(transform::locationFromText("param=-99999999999999999999", back));
  EXPECT_FALSE(transform::locationFromText("dim=12x", back));
  EXPECT_FALSE(transform::locationFromText("param=", back));
}

TEST(Witness, TextRoundTrips) {
  Witness w = benignWitness("softmax", "cpu", 4, 11);
  w.layer = "interp";
  w.detail = "trial 0: mismatch at y[0,1]";
  const Witness back = witnessFromText(witnessToText(w));
  EXPECT_EQ(back.kernel, w.kernel);
  EXPECT_EQ(back.profile, w.profile);
  EXPECT_EQ(back.seed, w.seed);
  EXPECT_EQ(back.layer, w.layer);
  EXPECT_EQ(back.detail, w.detail);
  ASSERT_EQ(back.steps.size(), w.steps.size());
  for (std::size_t i = 0; i < w.steps.size(); ++i) {
    EXPECT_EQ(back.steps[i].transform, w.steps[i].transform);
    EXPECT_TRUE(back.steps[i].loc == w.steps[i].loc);
  }
}

TEST(Witness, RejectsMalformedInput) {
  EXPECT_THROW(witnessFromText("kernel softmax\n"), Error);  // no header
  EXPECT_THROW(witnessFromText("perfdojo-witness v1\nprofile cpu\n"), Error);
  EXPECT_THROW(witnessFromText("perfdojo-witness v1\nkernel k\nprofile cpu\n"
                               "action no_such_transform | node=1\n"),
               Error);
}

// --- Oracle ----------------------------------------------------------------

TEST(Oracle, PassesOnHeuristicSchedule) {
  const ir::Program original = kernels::makeSoftmax(6, 10);
  const auto h = search::heuristicPass(original, machines::xeon());
  OracleOptions opts;
  opts.check_codegen = true;
  search::EvalCache cache;
  const auto r =
      checkOracle(original, h.current(), machines::xeon(), &cache, opts);
  EXPECT_TRUE(r.ok) << oracleLayerName(r.layer) << ": " << r.detail;
}

TEST(Oracle, CatchesSemanticBreakAtInterpLayer) {
  const ir::Program p = kernels::makeMul(4, 6);
  const auto locs = evilMulToAdd().findApplicable(p, findProfile("cpu")->caps);
  ASSERT_FALSE(locs.empty());
  const ir::Program q = evilMulToAdd().apply(p, locs[0]);
  OracleOptions opts;
  search::EvalCache cache;
  const auto r = checkOracle(p, q, machines::xeon(), &cache, opts);
  ASSERT_FALSE(r.ok);
  EXPECT_EQ(r.layer, OracleLayer::Interp);
  EXPECT_NE(r.detail.find("mismatch"), std::string::npos) << r.detail;
}

TEST(Oracle, CodegenLayerAgreesOnTransformedPrograms) {
  const ir::Program original = kernels::makeReduceMean(5, 9);
  const auto h = search::heuristicPass(original, machines::xeon());
  OracleOptions opts;
  const auto r = checkCodegenAgreement(h.current(), opts);
  EXPECT_TRUE(r.ok) << r.detail;
}

TEST(Oracle, CacheSelfCheckDetectsPoisonedEntry) {
  const ir::Program p = kernels::makeAdd(4, 4);
  const auto& m = machines::xeon();
  search::EvalCache cache;
  std::string detail;
  EXPECT_TRUE(cache.selfCheck(m, p, &detail)) << detail;

  // Poison the memo table with a wrong cost for p's canonical hash: the
  // self-check must notice the divergence from a fresh evaluation.
  search::EvalCache poisoned;
  poisoned.insert(m, ir::canonicalHash(p), m.evaluate(p) * 2 + 1);
  EXPECT_FALSE(poisoned.selfCheck(m, p, &detail));
  EXPECT_NE(detail.find("memoized cost"), std::string::npos) << detail;
}

// --- Minimizer -------------------------------------------------------------

TEST(Minimizer, ShrinksToSingleEvilStep) {
  const ir::Program original = kernels::makeMul(6, 8);
  const auto* prof = findProfile("cpu");
  ASSERT_NE(prof, nullptr);

  // Two benign real actions, then the injected break.
  Rng rng(3);
  ir::Program p = original;
  std::vector<Step> steps;
  for (int i = 0; i < 2; ++i) {
    const auto actions = transform::allActions(p, prof->caps);
    ASSERT_FALSE(actions.empty());
    const auto& a = actions[rng.uniform(actions.size())];
    steps.push_back({a.transform, a.loc});
    p = a.apply(p);
  }
  const auto evil_locs = evilMulToAdd().findApplicable(p, prof->caps);
  ASSERT_FALSE(evil_locs.empty());
  steps.push_back({&evilMulToAdd(), evil_locs[0]});

  verify::VerifyOptions vo;
  vo.trials = 1;
  const FailurePredicate fails = [&](const std::vector<Step>& cand) {
    transform::History::ReplayResult rr;
    const auto q = transform::History::replay(original, cand, rr);
    if (!q) return false;
    return !verify::verifyEquivalent(original, *q, vo).equivalent;
  };
  ASSERT_TRUE(fails(steps));

  MinimizeStats ms;
  const auto minimal = minimizeTrajectory(steps, fails, &ms);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0].transform, &evilMulToAdd());
  EXPECT_EQ(ms.initial_steps, 3u);
  EXPECT_EQ(ms.final_steps, 1u);
  EXPECT_TRUE(fails(minimal));
}

// --- The meta-test ---------------------------------------------------------

TEST(MetaTest, InjectedMisdetectionIsCaughtShrunkAndReplayable) {
  const std::string dir = tempDir("fuzz_meta");
  FuzzConfig cfg;
  cfg.seed = 5;
  cfg.kernels = {"mul"};
  cfg.profiles = {"cpu"};
  cfg.trajectories = 6;
  cfg.max_steps = 8;
  cfg.codegen_final = false;  // the injected bug is semantic, keep it fast
  cfg.witness_dir = dir;
  cfg.transforms = {&transform::splitScope(), &transform::interchangeScopes(),
                    &evilMulToAdd()};

  const auto r = runFuzz(cfg);
  ASSERT_FALSE(r.ok()) << "oracle missed the injected mis-detection";
  const Finding& f = r.findings.front();
  EXPECT_EQ(f.witness.layer, "interp");
  ASSERT_LE(f.witness.steps.size(), 3u);
  ASSERT_GE(f.witness.steps.size(), 1u);
  EXPECT_EQ(f.witness.steps.back().transform, &evilMulToAdd());
  ASSERT_FALSE(f.file.empty());

  // The emitted replay file must reproduce the failure, deterministically.
  const Witness w = readWitnessFile(f.file, &testResolver);
  OracleOptions opts;
  const auto r1 = runWitness(w, opts);
  const auto r2 = runWitness(w, opts);
  ASSERT_FALSE(r1.ok);
  EXPECT_EQ(r1.layer, OracleLayer::Interp);
  EXPECT_EQ(r1.detail, r2.detail);
  EXPECT_EQ(r1.layer, r2.layer);
  EXPECT_EQ(f.report.detail, r1.detail);
}

TEST(MetaTest, UnderReportedMutationIsCaughtAtIncrementalHashLayer) {
  // The annotation itself is harmless — interp, roundtrip, cache and codegen
  // all pass on the resulting program. Only the incremental-hash layer,
  // cross-checking the walk's maintained hash against a full re-render,
  // can expose the missing MutationSummary.
  FuzzConfig cfg;
  cfg.seed = 11;
  cfg.kernels = {"add"};
  cfg.profiles = {"cpu"};
  cfg.trajectories = 4;
  cfg.max_steps = 6;
  cfg.codegen_final = false;
  cfg.transforms = {&transform::splitScope(), &evilSilentAnnotate()};

  const auto r = runFuzz(cfg);
  ASSERT_FALSE(r.ok()) << "incremental-hash layer missed the silent mutation";
  const Finding& f = r.findings.front();
  EXPECT_EQ(f.witness.layer, "incremental-hash");
  ASSERT_GE(f.witness.steps.size(), 1u);
  // The minimizer replays incrementally, so the shrunk trajectory must still
  // end in (and typically consist only of) the under-reporting step.
  EXPECT_EQ(f.witness.steps.back().transform, &evilSilentAnnotate());
  EXPECT_NE(f.report.detail.find("full re-render"), std::string::npos)
      << f.report.detail;
}

TEST(MetaTest, StaleActionIndexIsCaughtAtActionSetLayer) {
  // The renumbering is invisible to every text-keyed layer: canonical text,
  // hash, interpreter output and modeled cost are all byte-identical. The
  // only observable damage is that the walk's maintained ActionSet still
  // carries locations under the dead NodeId, which the element-for-element
  // cross-check against a fresh enumeration must flag.
  FuzzConfig cfg;
  cfg.seed = 7;
  cfg.kernels = {"add"};
  cfg.profiles = {"cpu"};
  cfg.trajectories = 4;
  cfg.max_steps = 6;
  cfg.codegen_final = false;
  cfg.transforms = {&transform::splitScope(), &evilRenumberScope()};

  const auto r = runFuzz(cfg);
  ASSERT_FALSE(r.ok()) << "action-set layer missed the unreported renumber";
  const Finding& f = r.findings.front();
  EXPECT_EQ(f.witness.layer, "action-set");
  ASSERT_GE(f.witness.steps.size(), 1u);
  // The minimizer replays with the maintained-index path, so the shrunk
  // trajectory still ends in the mis-reporting step.
  EXPECT_EQ(f.witness.steps.back().transform, &evilRenumberScope());
  EXPECT_NE(f.report.detail.find("action set"), std::string::npos)
      << f.report.detail;
}

TEST(MetaTest, OfferThenThrowIsCaughtAtApplyLayer) {
  FuzzConfig cfg;
  cfg.seed = 2;
  cfg.kernels = {"add"};
  cfg.profiles = {"cpu"};
  cfg.trajectories = 1;
  cfg.max_steps = 4;
  cfg.codegen_final = false;
  cfg.transforms = {&transform::splitScope(), &evilOfferThenThrow()};

  const auto r = runFuzz(cfg);
  ASSERT_FALSE(r.ok());
  const Finding& f = r.findings.front();
  EXPECT_EQ(f.witness.layer, "apply");
  EXPECT_EQ(f.witness.steps.size(), 1u);
  EXPECT_EQ(f.witness.steps.back().transform, &evilOfferThenThrow());
}

// --- Corpus + replay -------------------------------------------------------

TEST(Corpus, BenignSeedsPassAndPoisonedSeedRegresses) {
  const std::string dir = tempDir("fuzz_corpus");
  writeWitnessFile(dir + "/a_softmax.witness",
                   benignWitness("softmax", "cpu", 4, 21));
  writeWitnessFile(dir + "/b_matmul.witness",
                   benignWitness("matmul", "gpu", 3, 22));

  OracleOptions opts;
  const auto ok = runCorpus(dir, opts, &testResolver);
  EXPECT_EQ(ok.total, 2);
  EXPECT_TRUE(ok.ok()) << (ok.failures.empty()
                               ? ""
                               : ok.failures.front().second.detail);

  // Add a witness for a still-broken transform: the corpus run must flag it.
  Witness bad;
  bad.kernel = "mul";
  bad.profile = "cpu";
  bad.seed = 9;
  bad.layer = "interp";
  const ir::Program p = kernels::findKernel("mul")->build_small();
  const auto locs = evilMulToAdd().findApplicable(p, findProfile("cpu")->caps);
  ASSERT_FALSE(locs.empty());
  bad.steps.push_back({&evilMulToAdd(), locs[0]});
  writeWitnessFile(dir + "/c_bad.witness", bad);

  const auto regressed = runCorpus(dir, opts, &testResolver);
  EXPECT_EQ(regressed.total, 3);
  ASSERT_EQ(regressed.failures.size(), 1u);
  EXPECT_NE(regressed.failures[0].first.find("c_bad"), std::string::npos);
  EXPECT_EQ(regressed.failures[0].second.layer, OracleLayer::Interp);
}

TEST(Fuzzer, BudgetedRunTerminatesAndIsClean) {
  FuzzConfig cfg;
  cfg.seed = 17;
  cfg.kernels = {"relu", "dot"};
  cfg.budget_sec = 1.0;
  cfg.max_steps = 6;
  cfg.codegen_final = false;
  const auto r = runFuzz(cfg);
  EXPECT_TRUE(r.ok());
  EXPECT_GT(r.stats.trajectories, 0);
  EXPECT_LT(r.stats.wall_sec, 30.0);
}

}  // namespace
}  // namespace perfdojo::fuzz
