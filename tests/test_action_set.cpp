// Property and bit-identity suite for the incrementally maintained action
// index (transform::ActionSet) and the arena rebase-on-accept path
// (ir::CanonicalArena::rebase, search::DeltaContext::accept).
//
// The contract under test (see src/transform/action_set.h): after every
// bind()/update() the maintained list is element-identical — same elements,
// same order — to a fresh transform::allActions enumeration; a rebased arena
// is indistinguishable column by column from a freshly bound one; and every
// search tier makes exactly the decisions of the re-enumerating pipeline
// whether the index and the rebase are on or off, on one thread or eight.
//
// Suite names deliberately contain "ActionSet"/"Rebase" so the CI
// ThreadSanitizer job's -R regex picks them up.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "dojo/dojo.h"
#include "ir/arena.h"
#include "ir/canonical.h"
#include "ir/incremental.h"
#include "kernels/kernels.h"
#include "machines/machine.h"
#include "search/delta.h"
#include "search/exact.h"
#include "search/graph.h"
#include "search/search.h"
#include "support/rng.h"
#include "support/telemetry.h"
#include "transform/action_set.h"
#include "transform/transform.h"

namespace perfdojo::search {
namespace {

/// Table-3 kernels the properties quantify over (flat builds; trajectories
/// grow them into the deep split/annotated trees the index exists for).
const std::vector<const char*>& corpusLabels() {
  static const std::vector<const char*> labels = {"softmax", "layernorm_1",
                                                  "matmul", "mul"};
  return labels;
}

/// Restores a process-wide default on scope exit, so a failing assertion in
/// one test cannot leak a disabled index into the rest of the binary.
struct IndexDefaultGuard {
  bool saved = transform::ActionSet::defaultEnabled();
  ~IndexDefaultGuard() { transform::ActionSet::setDefaultEnabled(saved); }
};

TEST(ActionSet, MatchesFreshEnumerationAlongSeededTrajectories) {
  // The core invariant, quantified over kernels x caps profiles x seeded
  // random trajectories: after every accepted in-place mutation, the spliced
  // index equals a fresh enumeration element for element.
  std::int64_t total_splices = 0;
  for (const char* label : corpusLabels()) {
    const auto* k = kernels::findKernel(label);
    ASSERT_NE(k, nullptr) << label;
    for (const auto* m :
         {&machines::xeon(), &machines::gh200(), &machines::snitch()}) {
      for (const std::uint64_t seed : {3u, 17u}) {
        SCOPED_TRACE(::testing::Message() << label << " on " << m->name()
                                          << " seed " << seed);
        Rng rng(seed);
        ir::Program p = k->build();
        transform::ActionSet aset;
        aset.bind(p, m->caps());
        std::string detail;
        ASSERT_TRUE(aset.selfCheck(p, &detail)) << detail;
        for (int step = 0; step < 12; ++step) {
          const auto& actions = aset.actions();
          if (actions.empty()) break;
          const auto a = actions[rng.uniform(actions.size())];
          ir::MutationSummary mut;
          a.transform->applyInPlace(p, a.loc, &mut);
          aset.update(p, mut);
          ASSERT_TRUE(aset.selfCheck(p, &detail))
              << "step " << step << " (" << a.describe(p) << "): " << detail;
        }
        total_splices += aset.stats().transform_splices;
      }
    }
  }
  // The walks must actually exercise the incremental path, not live off the
  // conservative full-rebuild fallback.
  EXPECT_GT(total_splices, 0);
}

TEST(ActionSet, ConservativeSummaryFallsBackToFullRebuild) {
  const ir::Program base = kernels::findKernel("softmax")->build();
  const auto& caps = machines::xeon().caps();
  transform::ActionSet aset;
  aset.bind(base, caps);

  // A real mutation reported conservatively: the index must notice it cannot
  // splice and rebuild, landing on the correct list anyway.
  ir::Program p = base;
  const auto actions = transform::allActions(p, caps);
  ASSERT_FALSE(actions.empty());
  ir::MutationSummary ignored;
  actions.front().transform->applyInPlace(p, actions.front().loc, &ignored);
  aset.update(p, ir::MutationSummary::conservative());
  EXPECT_EQ(aset.stats().full_rebuilds, 1);
  std::string detail;
  EXPECT_TRUE(aset.selfCheck(p, &detail)) << detail;

  // An honest empty summary on an unchanged program must not rebuild — and
  // must still be correct, because nothing changed.
  aset.update(p, ir::MutationSummary::none());
  EXPECT_EQ(aset.stats().full_rebuilds, 1);
  EXPECT_TRUE(aset.selfCheck(p, &detail)) << detail;
}

TEST(ActionSet, DojoMovesSpliceAcrossPlayAndUndo) {
  const auto& m = machines::xeon();
  dojo::Dojo d(kernels::findKernel("mul")->build(), m);
  for (int step = 0; step < 4; ++step) {
    const auto moves = d.moves();
    const auto fresh = transform::allActions(d.program(), m.caps());
    ASSERT_EQ(moves.size(), fresh.size()) << "step " << step;
    for (std::size_t i = 0; i < moves.size(); ++i) {
      ASSERT_EQ(moves[i].transform, fresh[i].transform) << "step " << step;
      ASSERT_TRUE(moves[i].loc == fresh[i].loc) << "step " << step;
    }
    if (moves.empty()) break;
    d.play(moves[step % moves.size()]);
  }
  d.undo();
  const auto moves = d.moves();
  const auto fresh = transform::allActions(d.program(), m.caps());
  ASSERT_EQ(moves.size(), fresh.size());
  for (std::size_t i = 0; i < moves.size(); ++i)
    ASSERT_TRUE(moves[i].transform == fresh[i].transform &&
                moves[i].loc == fresh[i].loc);
}

/// Requires `got` to be indistinguishable from `want` through every public
/// accessor — the rebase acceptance bar.
void expectArenasIdentical(const ir::CanonicalArena& got,
                           const ir::CanonicalArena& want,
                           const ir::Program& p) {
  ASSERT_EQ(got.size(), want.size());
  EXPECT_EQ(got.hash(), want.hash());
  EXPECT_EQ(got.text(), want.text());
  for (std::size_t s = 0; s < want.size(); ++s) {
    ASSERT_EQ(got.idOf(s), want.idOf(s)) << "slot " << s;
    ASSERT_EQ(got.subtreeEnd(s), want.subtreeEnd(s)) << "slot " << s;
    ASSERT_EQ(got.parentOf(s), want.parentOf(s)) << "slot " << s;
    ASSERT_EQ(got.depthOf(s), want.depthOf(s)) << "slot " << s;
    ASSERT_EQ(got.isScope(s), want.isScope(s)) << "slot " << s;
    ASSERT_EQ(got.extentOf(s), want.extentOf(s)) << "slot " << s;
    ASSERT_EQ(got.annoOf(s), want.annoOf(s)) << "slot " << s;
    ASSERT_EQ(got.subtreeText(s), want.subtreeText(s)) << "slot " << s;
  }
  for (ir::NodeId id = 0; id < p.next_id; ++id)
    ASSERT_EQ(got.slotOf(id), want.slotOf(id)) << "id " << id;
}

TEST(Rebase, ArenaRebaseIndistinguishableFromFreshBind) {
  for (const char* label : corpusLabels()) {
    const auto* k = kernels::findKernel(label);
    ASSERT_NE(k, nullptr) << label;
    SCOPED_TRACE(label);
    Rng rng(29);
    ir::Program p = k->build();
    ir::CanonicalArena arena(p);
    for (int step = 0; step < 8; ++step) {
      const auto actions = transform::allActions(p, machines::xeon().caps());
      if (actions.empty()) break;
      const auto& a = actions[rng.uniform(actions.size())];
      ir::MutationSummary mut;
      a.transform->applyInPlace(p, a.loc, &mut);
      arena.rebase(p, mut);
      const ir::CanonicalArena fresh(p);
      SCOPED_TRACE(::testing::Message() << "step " << step);
      expectArenasIdentical(arena, fresh, p);
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(Rebase, ConservativeSummaryEqualsFreshBind) {
  ir::Program p = kernels::findKernel("layernorm_1")->build();
  ir::CanonicalArena arena(p);
  const auto actions = transform::allActions(p, machines::xeon().caps());
  ASSERT_FALSE(actions.empty());
  ir::MutationSummary ignored;
  actions.front().transform->applyInPlace(p, actions.front().loc, &ignored);
  arena.rebase(p, ir::MutationSummary::conservative());
  const ir::CanonicalArena fresh(p);
  expectArenasIdentical(arena, fresh, p);
}

TEST(Rebase, DeltaAcceptMatchesRebindOnBothBackends) {
  // The accepted-move path: a context that rebases in place after accept()
  // must stay bit-identical — base hash and program — to one that rebinds
  // from scratch, for either canonical-form backend.
  for (const bool use_arena : {true, false}) {
    SCOPED_TRACE(use_arena ? "arena backend" : "line-cache backend");
    ir::Program p = kernels::findKernel("softmax")->build();
    DeltaContext fast, slow;
    fast.setUseArena(use_arena);
    slow.setUseArena(use_arena);
    fast.setUseRebase(true);
    slow.setUseRebase(false);
    fast.bind(p);
    slow.bind(p);
    Rng rng(41);
    for (int step = 0; step < 8; ++step) {
      const auto actions = transform::allActions(p, machines::xeon().caps());
      if (actions.empty()) break;
      const auto& a = actions[rng.uniform(actions.size())];
      const ir::Program& pf = fast.accept(a);
      const ir::Program& ps = slow.accept(a);
      ASSERT_EQ(fast.baseHash(), slow.baseHash()) << "step " << step;
      ASSERT_EQ(fast.baseHash(), ir::canonicalHash(pf)) << "step " << step;
      ASSERT_TRUE(ir::canonicallyEqual(pf, ps)) << "step " << step;
      // Both contexts must keep pricing neighbors identically after the
      // in-place rebase.
      const auto next = transform::allActions(pf, machines::xeon().caps());
      if (!next.empty())
        ASSERT_EQ(fast.neighborHash(next.front()),
                  slow.neighborHash(next.front()))
            << "step " << step;
      p = pf;
    }
    EXPECT_EQ(fast.stats().accept_rebinds, 0);
    EXPECT_GT(slow.stats().accept_rebinds, 0);
  }
}

/// Drops every "wall_ms" field from a JSONL trace: the only member whose
/// value legitimately varies between bit-identical runs.
std::string stripWallClock(std::string jsonl) {
  const std::string key = ",\"wall_ms\":";
  for (std::size_t at; (at = jsonl.find(key)) != std::string::npos;) {
    std::size_t end = at + key.size();
    while (end < jsonl.size() && jsonl[end] != ',' && jsonl[end] != '}') ++end;
    jsonl.erase(at, end - at);
  }
  return jsonl;
}

TEST(ActionSet, SearchTracesBitIdenticalIndexOnOffAcrossThreads) {
  // The acceptance criterion of the action-set PR: decision sequences,
  // traces, best cost and eval counts bit-identical with the index and the
  // rebase on or off, threads 1 or 8. The reference is the re-enumerating
  // pipeline (index off, rebase off).
  const auto& m = machines::xeon();
  for (const char* label : {"softmax", "matmul"}) {
    const ir::Program kernel = kernels::findKernel(label)->build();
    SearchConfig base;
    base.method = SearchMethod::SimulatedAnnealing;
    base.structure = SpaceStructure::Edges;
    base.budget = 160;
    base.max_steps = 10;
    base.seed = 7;

    Telemetry ref_sink;
    SearchConfig ref_cfg = base;
    ref_cfg.threads = 1;
    ref_cfg.use_action_index = false;
    ref_cfg.use_rebase = false;
    ref_cfg.telemetry = &ref_sink;
    const auto reference = runSearch(kernel, m, ref_cfg);
    const std::string ref_trace = stripWallClock(ref_sink.buffered());
    ASSERT_FALSE(ref_trace.empty());

    for (int threads : {1, 8}) {
      for (bool use_index : {false, true}) {
        for (bool use_rebase : {false, true}) {
          if (!use_index && !use_rebase && threads == 1) continue;  // the ref
          SCOPED_TRACE(::testing::Message()
                       << label << " threads=" << threads
                       << " index=" << use_index << " rebase=" << use_rebase);
          Telemetry sink;
          SearchConfig cfg = base;
          cfg.threads = threads;
          cfg.use_action_index = use_index;
          cfg.use_rebase = use_rebase;
          cfg.telemetry = &sink;
          const auto r = runSearch(kernel, m, cfg);
          EXPECT_EQ(reference.best_runtime, r.best_runtime);
          EXPECT_EQ(reference.evals, r.evals);
          EXPECT_TRUE(ir::canonicallyEqual(reference.best, r.best));
          ASSERT_EQ(reference.trace.size(), r.trace.size());
          for (std::size_t i = 0; i < reference.trace.size(); ++i)
            ASSERT_EQ(reference.trace[i], r.trace[i]) << "at eval " << i;
          EXPECT_EQ(stripWallClock(sink.buffered()), ref_trace);
        }
      }
    }
  }
}

TEST(ActionSet, RandomSamplingTracesBitIdenticalIndexOnOff) {
  const auto& m = machines::xeon();
  const ir::Program kernel = kernels::findKernel("softmax")->build();
  SearchConfig base;
  base.method = SearchMethod::RandomSampling;
  base.structure = SpaceStructure::Edges;
  base.budget = 120;
  base.max_steps = 8;
  base.seed = 11;

  SearchConfig ref_cfg = base;
  ref_cfg.use_action_index = false;
  const auto reference = runSearch(kernel, m, ref_cfg);

  SearchConfig cfg = base;
  cfg.use_action_index = true;
  const auto r = runSearch(kernel, m, cfg);
  EXPECT_EQ(reference.best_runtime, r.best_runtime);
  EXPECT_EQ(reference.evals, r.evals);
  EXPECT_TRUE(ir::canonicallyEqual(reference.best, r.best));
  ASSERT_EQ(reference.trace.size(), r.trace.size());
  for (std::size_t i = 0; i < reference.trace.size(); ++i)
    ASSERT_EQ(reference.trace[i], r.trace[i]) << "at eval " << i;
}

TEST(ActionSet, GraphExpansionIdenticalIndexOnOff) {
  // The BFS graph derives each child's action set from its parent's via the
  // producing action's summary; the graph must be node- and edge-identical
  // to the re-enumerating expansion.
  IndexDefaultGuard guard;
  const ir::Program p = kernels::findKernel("softmax")->build();
  transform::ActionSet::setDefaultEnabled(true);
  TransformationGraph indexed(p, machines::xeon(), /*max_depth=*/2,
                              /*max_nodes=*/200);
  transform::ActionSet::setDefaultEnabled(false);
  TransformationGraph full(p, machines::xeon(), 2, 200);

  ASSERT_EQ(indexed.nodeCount(), full.nodeCount());
  ASSERT_EQ(indexed.edgeCount(), full.edgeCount());
  auto it = full.nodes().begin();
  for (const auto& [hash, node] : indexed.nodes()) {
    ASSERT_EQ(hash, it->first);
    EXPECT_EQ(node.runtime, it->second.runtime);
    EXPECT_EQ(node.depth, it->second.depth);
    ++it;
  }
  for (std::size_t i = 0; i < indexed.edges().size(); ++i) {
    EXPECT_EQ(indexed.edges()[i].from, full.edges()[i].from) << "edge " << i;
    EXPECT_EQ(indexed.edges()[i].to, full.edges()[i].to) << "edge " << i;
    EXPECT_EQ(indexed.edges()[i].label, full.edges()[i].label) << "edge " << i;
  }
  EXPECT_EQ(indexed.best().hash, full.best().hash);
}

TEST(ActionSet, ExactCertificatesBitIdenticalIndexOnOffAcrossThreads) {
  // The exact tier's frontier re-materialization replays trajectories through
  // a copied kernel-bound index; its proof objects must not depend on that.
  IndexDefaultGuard guard;
  const ir::Program kernel = kernels::findKernel("mul")->build_small();
  const auto& m = machines::snitch();
  ExactConfig cfg;
  cfg.depth = 3;
  cfg.threads = 1;
  cfg.kernel_label = "mul";

  transform::ActionSet::setDefaultEnabled(false);
  const auto reference = runExact(kernel, m, cfg);

  transform::ActionSet::setDefaultEnabled(true);
  for (int threads : {1, 8}) {
    SCOPED_TRACE(::testing::Message() << "threads=" << threads);
    ExactConfig c = cfg;
    c.threads = threads;
    const auto r = runExact(kernel, m, c);
    EXPECT_EQ(r.cert.toJson(), reference.cert.toJson());
    EXPECT_EQ(r.best_cost, reference.best_cost);
    EXPECT_TRUE(ir::canonicallyEqual(r.best, reference.best));
  }
}

}  // namespace
}  // namespace perfdojo::search
