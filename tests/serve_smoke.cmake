# End-to-end smoke of the tuning server through the shipped binary.
#
#   client --count 3  ->  serve (cold, persists schedule cache)
#                     ->  serve (warm, fresh process, same cache dir)
#                     ->  client --cold/--warm   (bit-identical responses)
#
# Driven as `cmake -DPERFDOJO=<bin> -DWORK=<dir> -P serve_smoke.cmake` so it
# runs identically under ctest and in CI.
if(NOT PERFDOJO OR NOT WORK)
  message(FATAL_ERROR "usage: cmake -DPERFDOJO=<perfdojo> -DWORK=<dir> -P serve_smoke.cmake")
endif()

file(REMOVE_RECURSE ${WORK})
file(MAKE_DIRECTORY ${WORK})

function(run_checked)
  execute_process(COMMAND ${ARGN} RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "command failed (${rc}): ${ARGN}")
  endif()
endfunction()

run_checked(${PERFDOJO} client --kernel mul --machine xeon --method search
            --budget 60 --count 3 OUTPUT_FILE ${WORK}/requests.jsonl)

run_checked(${PERFDOJO} serve --cache-dir ${WORK}/cache --workers 4
            --in ${WORK}/requests.jsonl --out-file ${WORK}/cold.jsonl
            ERROR_FILE ${WORK}/cold_stats.txt)

# Fresh process, same cache dir: everything must come back warm.
run_checked(${PERFDOJO} serve --cache-dir ${WORK}/cache --workers 4
            --in ${WORK}/requests.jsonl --out-file ${WORK}/warm.jsonl
            ERROR_FILE ${WORK}/warm_stats.txt)

run_checked(${PERFDOJO} client --cold ${WORK}/cold.jsonl --warm ${WORK}/warm.jsonl)

# The warm server's stats line must show zero tuning runs and zero
# machine-model evaluations — the whole batch was served from disk.
file(READ ${WORK}/warm_stats.txt warm_stats)
foreach(needle "\"tuning_runs\":0" "\"machine_evals\":0" "\"warm_hits\":3")
  string(FIND "${warm_stats}" "${needle}" at)
  if(at EQUAL -1)
    message(FATAL_ERROR "warm serve stats missing ${needle}: ${warm_stats}")
  endif()
endforeach()

# The cold run must have tuned the deduped request exactly once.
file(READ ${WORK}/cold_stats.txt cold_stats)
string(FIND "${cold_stats}" "\"tuning_runs\":1" at)
if(at EQUAL -1)
  message(FATAL_ERROR "cold serve did not dedupe to one tuning run: ${cold_stats}")
endif()

message(STATUS "serve smoke passed: cold tuned once, warm served 3/3 with zero evaluations")
