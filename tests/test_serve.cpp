// The tuning server: wire format, warm-path persistence, in-flight dedupe,
// and the shard store underneath it. Test names deliberately start with
// Serve/Shard/Inflight so CI's TSan job picks them up.
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <future>
#include <sstream>
#include <thread>

#include <gtest/gtest.h>

#include "libgen/server.h"
#include "search/diskstore.h"
#include "search/inflight.h"
#include "support/common.h"

namespace perfdojo::libgen {
namespace {

namespace fs = std::filesystem;

std::string freshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  fs::remove_all(dir);
  return dir;
}

TuneRequest mulRequest(const std::string& id = "r0") {
  TuneRequest r;
  r.id = id;
  r.kernel = "mul";
  r.machine = "xeon";
  r.optimizer = "heuristic";
  return r;
}

TEST(ServeWire, RequestJsonRoundTrip) {
  TuneRequest r;
  r.id = "abc";
  r.kernel = "softmax";
  r.machine = "snitch";
  r.optimizer = "search";
  r.budget = 123;
  r.seed = 99;
  TuneRequest back;
  std::string err;
  ASSERT_TRUE(parseTuneRequest(requestToJson(r), back, err)) << err;
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.kernel, r.kernel);
  EXPECT_EQ(back.machine, r.machine);
  EXPECT_EQ(back.optimizer, r.optimizer);
  EXPECT_EQ(back.budget, r.budget);
  EXPECT_EQ(back.seed, r.seed);
}

TEST(ServeWire, ResponseJsonRoundTripIsBitExact) {
  TuneResponse r;
  r.id = "abc";
  r.ok = true;
  r.kernel = "mul";
  r.machine = "xeon";
  r.optimizer = "heuristic";
  r.served = "tuned";
  r.key = 0xdeadbeefcafef00dULL;
  r.recipe = "split_scope(@1, param=8)\nvectorize(@2)\n";
  r.signature = "void perfdojo_mul(const float* x)";
  r.source = "line1\n  \"quoted\"\nline3\n";
  r.baseline_runtime = 0.1;          // not exactly representable: the
  r.tuned_runtime = 6.1541e-05;      // round-trip must preserve the bits
  r.evaluations = 42;
  TuneResponse back;
  std::string err;
  ASSERT_TRUE(parseTuneResponse(responseToJson(r), back, err)) << err;
  EXPECT_EQ(back.key, r.key);
  EXPECT_EQ(back.recipe, r.recipe);
  EXPECT_EQ(back.source, r.source);
  EXPECT_EQ(back.baseline_runtime, r.baseline_runtime);
  EXPECT_EQ(back.tuned_runtime, r.tuned_runtime);
  EXPECT_EQ(back.evaluations, r.evaluations);
  EXPECT_EQ(responseToJson(back), responseToJson(r));
}

TEST(ServeWire, RequestValidationRejectsMissingFields) {
  TuneRequest r;
  std::string err;
  EXPECT_FALSE(parseTuneRequest("{\"machine\":\"xeon\"}", r, err));
  EXPECT_NE(err.find("kernel"), std::string::npos);
  EXPECT_FALSE(parseTuneRequest("{\"kernel\":\"mul\"}", r, err));
  EXPECT_NE(err.find("machine"), std::string::npos);
  EXPECT_FALSE(parseTuneRequest("not json at all", r, err));
  EXPECT_FALSE(parseTuneRequest("[1,2,3]", r, err));
}

TEST(ServeHandle, UnknownNamesComeBackAsErrors) {
  TuneServer server(ServeConfig{});
  auto r = mulRequest();
  r.kernel = "no_such_kernel";
  auto resp = server.handle(r);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("unknown kernel"), std::string::npos);

  r = mulRequest();
  r.machine = "pdp11";
  resp = server.handle(r);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("unknown machine"), std::string::npos);

  r = mulRequest();
  r.optimizer = "annealing";
  resp = server.handle(r);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("unknown optimizer"), std::string::npos);

  r = mulRequest();
  r.budget = 2'000'000'000;
  resp = server.handle(r);
  EXPECT_FALSE(resp.ok);
  EXPECT_NE(resp.error.find("out of range"), std::string::npos);

  EXPECT_EQ(server.stats().errors, 4);
  EXPECT_EQ(server.stats().tuning_runs, 0);
}

TEST(ServeHandle, MemoryOnlyServerStillWarmsRepeats) {
  TuneServer server(ServeConfig{});
  EXPECT_EQ(server.store(), nullptr);
  const auto first = server.handle(mulRequest("a"));
  ASSERT_TRUE(first.ok) << first.error;
  EXPECT_EQ(first.served, "tuned");
  const auto second = server.handle(mulRequest("b"));
  ASSERT_TRUE(second.ok);
  EXPECT_EQ(second.served, "warm");
  EXPECT_EQ(second.id, "b");
  EXPECT_EQ(second.recipe, first.recipe);
  EXPECT_EQ(second.tuned_runtime, first.tuned_runtime);
  EXPECT_EQ(server.stats().tuning_runs, 1);
  EXPECT_EQ(server.stats().warm_hits, 1);
}

TEST(ServeHandle, BudgetIsNormalizedOutOfDeterministicKeys) {
  // heuristic ignores the budget, so two different budgets must map to the
  // same schedule-cache key (the second request is a warm hit).
  TuneServer server(ServeConfig{});
  auto a = mulRequest("a");
  a.budget = 7;
  auto b = mulRequest("b");
  b.budget = 7000;
  const auto ra = server.handle(a);
  const auto rb = server.handle(b);
  ASSERT_TRUE(ra.ok && rb.ok);
  EXPECT_EQ(ra.key, rb.key);
  EXPECT_EQ(rb.served, "warm");
}

TEST(ServeHandle, WarmAcrossRestartWithZeroEvaluations) {
  const std::string dir = freshDir("pd_serve_restart");
  ServeConfig cfg;
  cfg.cache_dir = dir;
  TuneResponse cold;
  {
    TuneServer server(cfg);
    cold = server.handle(mulRequest());
    ASSERT_TRUE(cold.ok) << cold.error;
    EXPECT_EQ(cold.served, "tuned");
    EXPECT_GT(server.evalStats().misses, 0);
  }
  // A fresh server process over the same cache dir: the schedule comes back
  // bit-identical without a single machine-model evaluation.
  TuneServer server(cfg);
  const auto warm = server.handle(mulRequest());
  ASSERT_TRUE(warm.ok) << warm.error;
  EXPECT_EQ(warm.served, "warm");
  EXPECT_EQ(warm.key, cold.key);
  EXPECT_EQ(warm.recipe, cold.recipe);
  EXPECT_EQ(warm.source, cold.source);
  EXPECT_EQ(warm.signature, cold.signature);
  EXPECT_EQ(warm.baseline_runtime, cold.baseline_runtime);
  EXPECT_EQ(warm.tuned_runtime, cold.tuned_runtime);
  EXPECT_EQ(warm.evaluations, cold.evaluations);
  EXPECT_EQ(server.evalStats().requests, 0);
  EXPECT_EQ(server.evalStats().misses, 0);
  EXPECT_EQ(server.stats().tuning_runs, 0);
  EXPECT_EQ(server.stats().warm_hits, 1);
}

TEST(ServeHandle, ConcurrentDuplicatesCostOneTuningRun) {
  const std::string dir = freshDir("pd_serve_dedupe");
  ServeConfig cfg;
  cfg.cache_dir = dir;
  cfg.workers = 4;
  // search is slow enough that duplicates genuinely overlap in flight.
  TuneServer server(cfg);
  std::vector<TuneRequest> batch;
  for (int i = 0; i < 8; ++i) {
    auto r = mulRequest("req-" + std::to_string(i));
    r.optimizer = "search";
    r.budget = 60;
    batch.push_back(r);
  }
  const auto out = server.handleBatch(batch);
  ASSERT_EQ(out.size(), batch.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    ASSERT_TRUE(out[i].ok) << out[i].error;
    EXPECT_EQ(out[i].id, batch[i].id);
    EXPECT_EQ(out[i].key, out[0].key);
    EXPECT_EQ(out[i].recipe, out[0].recipe);
    EXPECT_EQ(out[i].tuned_runtime, out[0].tuned_runtime);
  }
  const auto st = server.stats();
  EXPECT_EQ(st.requests, 8);
  EXPECT_EQ(st.tuning_runs, 1);
  EXPECT_EQ(st.warm_hits + st.dedupe_joins, 7);
  EXPECT_EQ(st.errors, 0);
}

TEST(ServeWireLoop, StreamsResponsesAndFlagsMalformedLines) {
  std::stringstream in;
  in << requestToJson(mulRequest("good")) << "\n"
     << "   \n"                                  // blank: skipped, not counted
     << "this is not json\n"
     << "{\"kernel\":\"mul\"}\n";                // missing machine
  std::stringstream out;
  TuneServer server(ServeConfig{});
  EXPECT_EQ(runServe(server, in, out), 3);

  int ok = 0, bad = 0;
  std::string line;
  while (std::getline(out, line)) {
    TuneResponse resp;
    std::string err;
    ASSERT_TRUE(parseTuneResponse(line, resp, err)) << err;
    if (resp.ok) {
      EXPECT_EQ(resp.id, "good");
      ++ok;
    } else {
      EXPECT_NE(resp.error.find("malformed request"), std::string::npos);
      ++bad;
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(bad, 2);
  EXPECT_EQ(server.stats().requests, 3);
  EXPECT_EQ(server.stats().errors, 2);
}

TEST(ShardStore, PutGetAndStats) {
  search::ShardStore store(freshDir("pd_shard_basic"), 4);
  std::string out;
  EXPECT_FALSE(store.get(1, out));
  store.put(1, "{\"v\":1}");
  store.put(5, "{\"v\":5}");   // same shard as key 1 (5 % 4 == 1)
  store.put(2, "{\"v\":2}");
  ASSERT_TRUE(store.get(5, out));
  EXPECT_EQ(out, "{\"v\":5}");
  store.put(5, "{\"v\":55}");  // overwrite
  ASSERT_TRUE(store.get(5, out));
  EXPECT_EQ(out, "{\"v\":55}");
  const auto st = store.stats();
  EXPECT_EQ(st.puts, 4);
  EXPECT_EQ(st.entries, 3u);
  EXPECT_EQ(st.hits, 2);
  EXPECT_EQ(st.gets, 3);
  EXPECT_EQ(st.quarantined, 0);
}

TEST(ShardStore, PersistsAcrossReopen) {
  const std::string dir = freshDir("pd_shard_reopen");
  {
    search::ShardStore store(dir, 3);
    for (std::uint64_t k = 0; k < 50; ++k)
      store.put(k * 0x9e3779b97f4a7c15ULL + 1, "{\"k\":" + std::to_string(k) + "}");
  }
  search::ShardStore store(dir, 3);
  EXPECT_EQ(store.stats().entries, 50u);
  std::string out;
  for (std::uint64_t k = 0; k < 50; ++k) {
    ASSERT_TRUE(store.get(k * 0x9e3779b97f4a7c15ULL + 1, out)) << k;
    EXPECT_EQ(out, "{\"k\":" + std::to_string(k) + "}");
  }
}

TEST(ShardStore, RejectsMultilineRecords) {
  search::ShardStore store(freshDir("pd_shard_multiline"), 2);
  EXPECT_THROW(store.put(7, "line1\nline2"), Error);
}

TEST(ShardStore, QuarantinesCorruptShardFiles) {
  const std::string dir = freshDir("pd_shard_corrupt");
  const std::uint64_t key = 4;  // shard 0 of 4
  {
    search::ShardStore store(dir, 4);
    store.put(key, "{\"v\":4}");
  }
  {
    // A crash or hand edit leaves a half-written line in the shard file.
    std::ofstream f(dir + "/" + search::ShardStore::shardName(0),
                    std::ios::app);
    f << "deadbeef {truncated reco";
  }
  search::ShardStore store(dir, 4);
  EXPECT_EQ(store.stats().quarantined, 1);
  EXPECT_TRUE(fs::exists(dir + "/" + search::ShardStore::shardName(0) +
                         ".corrupt"));
  std::string out;
  // The torn line condemns only itself: the healthy entry is salvaged and
  // keeps serving.
  ASSERT_TRUE(store.get(key, out));
  EXPECT_EQ(out, "{\"v\":4}");
  // The salvage was re-persisted, so a second open is clean — no
  // re-quarantine of damage that is already gone.
  search::ShardStore reopened(dir, 4);
  EXPECT_EQ(reopened.stats().quarantined, 0);
  EXPECT_TRUE(reopened.get(key, out));
}

TEST(ShardStore, CorruptEntryDoesNotDropHealthySiblings) {
  // Three records in the same shard file; one record's JSON is damaged in
  // place. Quarantine must salvage the two healthy siblings, miss only the
  // damaged key, and leave a clean (non-re-quarantining) file behind.
  const std::string dir = freshDir("pd_shard_sibling");
  const std::uint64_t k1 = 4, k2 = 8, k3 = 12;  // all shard 0 of 4
  {
    search::ShardStore store(dir, 4);
    store.put(k1, "{\"v\":4}");
    store.put(k2, "{\"v\":8}");
    store.put(k3, "{\"v\":12}");
  }
  const std::string path = dir + "/" + search::ShardStore::shardName(0);
  {
    std::ifstream in(path);
    std::string text((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    const auto pos = text.find("{\"v\":8}");
    ASSERT_NE(pos, std::string::npos);
    text.replace(pos, 7, "{\"v\":8 ");  // drop the closing brace
    std::ofstream out(path, std::ios::trunc);
    out << text;
  }
  search::ShardStore store(dir, 4);
  EXPECT_EQ(store.stats().quarantined, 1);
  EXPECT_EQ(store.stats().entries, 2u);
  std::string out;
  ASSERT_TRUE(store.get(k1, out));
  EXPECT_EQ(out, "{\"v\":4}");
  EXPECT_FALSE(store.get(k2, out));  // only the damaged record is lost
  ASSERT_TRUE(store.get(k3, out));
  EXPECT_EQ(out, "{\"v\":12}");
  EXPECT_TRUE(fs::exists(path + ".corrupt"));

  search::ShardStore reopened(dir, 4);
  EXPECT_EQ(reopened.stats().quarantined, 0);
  EXPECT_EQ(reopened.stats().entries, 2u);
  ASSERT_TRUE(reopened.get(k1, out));
  ASSERT_TRUE(reopened.get(k3, out));
}

TEST(ServeHandle, CorruptCacheDirIsSurvivable) {
  // End to end: a corrupted shard must cost a re-tune, not a crash.
  const std::string dir = freshDir("pd_serve_corrupt");
  ServeConfig cfg;
  cfg.cache_dir = dir;
  std::uint64_t key = 0;
  {
    TuneServer server(cfg);
    key = server.handle(mulRequest()).key;
  }
  {
    const int shard = static_cast<int>(key % static_cast<std::uint64_t>(8));
    std::ofstream f(dir + "/" + search::ShardStore::shardName(shard),
                    std::ios::trunc);
    f << "garbage\n";
  }
  TuneServer server(cfg);
  ASSERT_NE(server.store(), nullptr);
  EXPECT_EQ(server.store()->stats().quarantined, 1);
  const auto resp = server.handle(mulRequest());
  ASSERT_TRUE(resp.ok) << resp.error;
  EXPECT_EQ(resp.served, "tuned");  // re-tuned, then re-persisted
  TuneServer again(cfg);
  EXPECT_EQ(again.handle(mulRequest()).served, "warm");
}

TEST(InflightMap, FirstClaimOwnsLaterClaimsJoin) {
  search::InflightMap<int> inflight;
  auto a = inflight.claim(42);
  EXPECT_TRUE(a.owner);
  auto b = inflight.claim(42);
  EXPECT_FALSE(b.owner);
  EXPECT_TRUE(inflight.claim(43).owner);  // distinct keys are independent
  EXPECT_EQ(inflight.size(), 2u);

  std::thread waiter([&] { EXPECT_EQ(b.future.get(), 7); });
  inflight.fulfill(42, 7);
  waiter.join();
  EXPECT_EQ(a.future.get(), 7);
  EXPECT_EQ(inflight.size(), 1u);          // 42 retired, 43 still pending
  EXPECT_TRUE(inflight.claim(42).owner);   // retired keys can be re-claimed
}

TEST(InflightMap, FailurePropagatesToEveryWaiter) {
  search::InflightMap<int> inflight;
  auto owner = inflight.claim(1);
  ASSERT_TRUE(owner.owner);
  auto joined = inflight.claim(1);
  inflight.fail(1, std::make_exception_ptr(std::runtime_error("boom")));
  EXPECT_THROW(joined.future.get(), std::runtime_error);
  EXPECT_THROW(owner.future.get(), std::runtime_error);
  EXPECT_EQ(inflight.size(), 0u);
}

TEST(InflightServe, ThrowingTunerFailsEveryWaiterAndRetires) {
  // Regression: a tuning run that throws while identical requests are
  // waiting on the in-flight future. Before the owner-guard fix, only a
  // `const std::exception&` throw reached inflight_.fail — anything else
  // left the entry in the map forever: the waiters hung, and every later
  // request for the key joined the dead promise instead of retrying.
  std::promise<void> owner_in_tuner;
  std::promise<void> release_owner;
  std::atomic<int> calls{0};
  ServeConfig cfg;
  cfg.workers = 1;  // handle() is driven from explicit threads below
  cfg.tuner = [&](const kernels::KernelInfo& k, const machines::Machine& m,
                  const LibGenConfig& c,
                  search::EvalCache* cache) -> LibraryEntry {
    if (calls.fetch_add(1) == 0) {
      owner_in_tuner.set_value();
      release_owner.get_future().wait();
      throw Error("model exploded on first call");
    }
    return tuneOne(k, m, c, cache);
  };
  TuneServer server(cfg);

  TuneResponse owner_resp;
  std::thread owner(
      [&] { owner_resp = server.handle(mulRequest("owner")); });
  owner_in_tuner.get_future().wait();
  // The owner is parked inside the tuning run, so these claims are
  // guaranteed to join its in-flight entry, not start runs of their own.
  std::vector<TuneResponse> waiter_resp(3);
  std::vector<std::thread> waiters;
  for (int i = 0; i < 3; ++i)
    waiters.emplace_back([&, i] {
      waiter_resp[static_cast<std::size_t>(i)] =
          server.handle(mulRequest("waiter-" + std::to_string(i)));
    });
  // Give the waiters time to reach future.get(); correctness does not
  // depend on it (a claim made any time before fail() joins the entry).
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  release_owner.set_value();
  owner.join();
  for (auto& w : waiters) w.join();

  EXPECT_FALSE(owner_resp.ok);
  EXPECT_NE(owner_resp.error.find("model exploded"), std::string::npos)
      << owner_resp.error;
  for (const auto& wr : waiter_resp) {
    EXPECT_FALSE(wr.ok);
    EXPECT_NE(wr.error.find("model exploded"), std::string::npos) << wr.error;
  }
  EXPECT_EQ(server.stats().errors, 4);
  EXPECT_EQ(server.stats().tuning_runs, 0);  // only successes count

  // The failed entry must be retired: the next identical request becomes a
  // fresh owner and retries (second tuner call succeeds).
  const auto retry = server.handle(mulRequest("retry"));
  ASSERT_TRUE(retry.ok) << retry.error;
  EXPECT_EQ(retry.served, "tuned");
  EXPECT_EQ(calls.load(), 2);
  EXPECT_EQ(server.stats().tuning_runs, 1);
}

TEST(InflightServe, NonStandardThrowStillFailsWaitersAndAllowsRetry) {
  // A tuner that throws something not derived from std::exception must not
  // escape handle() (documented never-throws) and must not abandon the
  // in-flight entry.
  std::atomic<int> calls{0};
  ServeConfig cfg;
  cfg.tuner = [&](const kernels::KernelInfo& k, const machines::Machine& m,
                  const LibGenConfig& c,
                  search::EvalCache* cache) -> LibraryEntry {
    if (calls.fetch_add(1) == 0) throw 42;  // NOLINT: deliberately non-std
    return tuneOne(k, m, c, cache);
  };
  TuneServer server(cfg);
  const auto first = server.handle(mulRequest("first"));
  EXPECT_FALSE(first.ok);
  EXPECT_NE(first.error.find("non-standard"), std::string::npos)
      << first.error;
  const auto retry = server.handle(mulRequest("retry"));
  ASSERT_TRUE(retry.ok) << retry.error;
  EXPECT_EQ(retry.served, "tuned");
  EXPECT_EQ(calls.load(), 2);
}

}  // namespace
}  // namespace perfdojo::libgen
