#include <gtest/gtest.h>

#include "ir/index_expr.h"
#include "support/common.h"

namespace perfdojo::ir {
namespace {

TEST(IndexExpr, EvalArithmetic) {
  auto e = IndexExpr::add(
      IndexExpr::mul(IndexExpr::iter(1), IndexExpr::constant(4)),
      IndexExpr::iter(2));
  auto lookup = [](NodeId id) -> std::int64_t { return id == 1 ? 3 : 2; };
  EXPECT_EQ(e.eval(lookup), 14);
}

TEST(IndexExpr, EvalDivMod) {
  auto e = IndexExpr::div(IndexExpr::iter(1), IndexExpr::constant(4));
  auto m = IndexExpr::mod(IndexExpr::iter(1), IndexExpr::constant(4));
  auto lookup = [](NodeId) -> std::int64_t { return 13; };
  EXPECT_EQ(e.eval(lookup), 3);
  EXPECT_EQ(m.eval(lookup), 1);
}

TEST(IndexExpr, SimplifyIdentities) {
  auto x = IndexExpr::iter(1);
  EXPECT_TRUE(IndexExpr::mul(x, IndexExpr::constant(1)).simplified() == x);
  EXPECT_TRUE(IndexExpr::add(x, IndexExpr::constant(0)).simplified() == x);
  EXPECT_TRUE(IndexExpr::mul(x, IndexExpr::constant(0)).simplified() ==
              IndexExpr::constant(0));
  EXPECT_TRUE(IndexExpr::add(IndexExpr::constant(2), IndexExpr::constant(3))
                  .simplified() == IndexExpr::constant(5));
}

TEST(IndexExpr, Substitute) {
  auto e = IndexExpr::add(IndexExpr::iter(1), IndexExpr::iter(2));
  auto r = e.substitute(1, IndexExpr::constant(7));
  auto lookup = [](NodeId) -> std::int64_t { return 5; };
  EXPECT_EQ(r.eval(lookup), 12);
}

TEST(IndexExpr, SubstituteSinglePass) {
  // iter(1) -> iter(1)*4 + iter(2) must not recurse into its own result.
  auto repl = IndexExpr::add(
      IndexExpr::mul(IndexExpr::iter(1), IndexExpr::constant(4)),
      IndexExpr::iter(2));
  auto r = IndexExpr::iter(1).substitute(1, repl);
  auto lookup = [](NodeId id) -> std::int64_t { return id == 1 ? 2 : 3; };
  EXPECT_EQ(r.eval(lookup), 11);
}

TEST(IndexExpr, CollectIters) {
  auto e = IndexExpr::add(IndexExpr::iter(3),
                          IndexExpr::mul(IndexExpr::iter(3), IndexExpr::iter(5)));
  std::vector<NodeId> its;
  e.collectIters(its);
  EXPECT_EQ(its.size(), 2u);
  EXPECT_TRUE(e.usesIter(3));
  EXPECT_TRUE(e.usesIter(5));
  EXPECT_FALSE(e.usesIter(4));
}

TEST(IndexExpr, AffineDecomposition) {
  // 2*i + j + 5
  auto e = IndexExpr::add(
      IndexExpr::add(IndexExpr::mul(IndexExpr::constant(2), IndexExpr::iter(1)),
                     IndexExpr::iter(2)),
      IndexExpr::constant(5));
  std::vector<IndexExpr::AffineTerm> terms;
  std::int64_t off = 0;
  ASSERT_TRUE(e.asAffine(terms, off));
  EXPECT_EQ(off, 5);
  ASSERT_EQ(terms.size(), 2u);
  EXPECT_EQ(terms[0].coef, 2);
  EXPECT_EQ(terms[1].coef, 1);
}

TEST(IndexExpr, AffineRejectsDivMod) {
  auto e = IndexExpr::div(IndexExpr::iter(1), IndexExpr::constant(2));
  std::vector<IndexExpr::AffineTerm> terms;
  std::int64_t off = 0;
  EXPECT_FALSE(e.asAffine(terms, off));
}

TEST(IndexExpr, AffineSubtraction) {
  // i - j : coef(i)=1, coef(j)=-1
  auto e = IndexExpr::sub(IndexExpr::iter(1), IndexExpr::iter(2));
  std::vector<IndexExpr::AffineTerm> terms;
  std::int64_t off = 0;
  ASSERT_TRUE(e.asAffine(terms, off));
  EXPECT_EQ(terms[0].coef, 1);
  EXPECT_EQ(terms[1].coef, -1);
}

TEST(IndexExpr, Equality) {
  auto a = IndexExpr::add(IndexExpr::iter(1), IndexExpr::constant(2));
  auto b = IndexExpr::add(IndexExpr::iter(1), IndexExpr::constant(2));
  auto c = IndexExpr::add(IndexExpr::iter(1), IndexExpr::constant(3));
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(IndexExpr, InvalidAccessThrows) {
  EXPECT_THROW(IndexExpr::constant(1).iterScope(), Error);
  EXPECT_THROW(IndexExpr::iter(1).constValue(), Error);
  EXPECT_THROW(IndexExpr::iter(0), Error);
}

}  // namespace
}  // namespace perfdojo::ir
