// Correctness of every kernel builder against straight-line reference math.
#include <cmath>

#include <gtest/gtest.h>

#include "interp/interpreter.h"
#include "kernels/kernels.h"

namespace perfdojo::kernels {
namespace {

using interp::runWithRandomInputs;

constexpr double kEps = 1e-5;

TEST(Kernels, Add) {
  auto r = runWithRandomInputs(makeAdd(3, 4), 1);
  for (std::int64_t i = 0; i < 3; ++i)
    for (std::int64_t j = 0; j < 4; ++j)
      EXPECT_NEAR(r.mem.byArray("z").at({i, j}),
                  r.mem.byArray("x").at({i, j}) + r.mem.byArray("y").at({i, j}),
                  1e-12);
}

TEST(Kernels, Mul) {
  auto r = runWithRandomInputs(makeMul(3, 4), 2);
  for (std::int64_t i = 0; i < 3; ++i)
    for (std::int64_t j = 0; j < 4; ++j)
      EXPECT_NEAR(r.mem.byArray("z").at({i, j}),
                  r.mem.byArray("x").at({i, j}) * r.mem.byArray("y").at({i, j}),
                  1e-12);
}

TEST(Kernels, Relu) {
  auto r = runWithRandomInputs(makeRelu(4, 4), 3);
  for (std::int64_t i = 0; i < 4; ++i)
    for (std::int64_t j = 0; j < 4; ++j)
      EXPECT_NEAR(r.mem.byArray("y").at({i, j}),
                  std::max(r.mem.byArray("x").at({i, j}), 0.0), 1e-12);
}

TEST(Kernels, BatchNormInference) {
  auto p = makeBatchNorm(2, 3, 2, 2);
  interp::Memory mem(p);
  Rng rng(4);
  mem.randomizeInputs(p, rng);
  // Variance must be non-negative for rsqrt to be defined.
  for (auto& v : mem.byArray("var").data()) v = std::abs(v) + 0.1;
  interp::execute(p, mem);
  struct {
    interp::Memory mem;
  } r{std::move(mem)};
  for (std::int64_t n = 0; n < 2; ++n)
    for (std::int64_t c = 0; c < 3; ++c)
      for (std::int64_t h = 0; h < 2; ++h)
        for (std::int64_t w = 0; w < 2; ++w) {
          const double x = r.mem.byArray("x").at({n, c, h, w});
          const double g = r.mem.byArray("gamma").at({c});
          const double be = r.mem.byArray("beta").at({c});
          const double mu = r.mem.byArray("mean").at({c});
          const double var = r.mem.byArray("var").at({c});
          const double a = g / std::sqrt(var + kEps);
          const double expect = a * x + (be - mu * a);
          EXPECT_NEAR(r.mem.byArray("y").at({n, c, h, w}), expect, 1e-6);
        }
}

TEST(Kernels, Bmm) {
  auto r = runWithRandomInputs(makeBmm(2, 2, 3, 2), 5);
  for (std::int64_t b = 0; b < 2; ++b)
    for (std::int64_t i = 0; i < 2; ++i)
      for (std::int64_t j = 0; j < 2; ++j) {
        double acc = 0;
        for (std::int64_t k = 0; k < 3; ++k)
          acc += r.mem.byArray("A").at({b, i, k}) * r.mem.byArray("B").at({b, k, j});
        EXPECT_NEAR(r.mem.byArray("Cm").at({b, i, j}), acc, 1e-9);
      }
}

TEST(Kernels, Conv2d) {
  const std::int64_t N = 1, K = 2, C = 2, H = 6, W = 6, R = 3;
  auto r = runWithRandomInputs(makeConv2d(N, K, C, H, W, R), 6);
  for (std::int64_t k = 0; k < K; ++k)
    for (std::int64_t oh = 0; oh < H - R + 1; ++oh)
      for (std::int64_t ow = 0; ow < W - R + 1; ++ow) {
        double acc = 0;
        for (std::int64_t c = 0; c < C; ++c)
          for (std::int64_t rr = 0; rr < R; ++rr)
            for (std::int64_t s = 0; s < R; ++s)
              acc += r.mem.byArray("x").at({0, c, oh + rr, ow + s}) *
                     r.mem.byArray("wgt").at({k, c, rr, s});
        EXPECT_NEAR(r.mem.byArray("y").at({0, k, oh, ow}), acc, 1e-9);
      }
}

TEST(Kernels, LayerNorm) {
  const std::int64_t N = 3, D = 6;
  auto r = runWithRandomInputs(makeLayerNorm(N, D), 7);
  for (std::int64_t i = 0; i < N; ++i) {
    double mu = 0;
    for (std::int64_t j = 0; j < D; ++j) mu += r.mem.byArray("x").at({i, j});
    mu /= D;
    double var = 0;
    for (std::int64_t j = 0; j < D; ++j) {
      const double d = r.mem.byArray("x").at({i, j}) - mu;
      var += d * d;
    }
    var /= D;
    for (std::int64_t j = 0; j < D; ++j) {
      const double expect =
          (r.mem.byArray("x").at({i, j}) - mu) / std::sqrt(var + kEps);
      EXPECT_NEAR(r.mem.byArray("y").at({i, j}), expect, 1e-6);
    }
  }
}

TEST(Kernels, ReluFfn) {
  auto r = runWithRandomInputs(makeReluFfn(1, 2, 3, 3), 8);
  for (std::int64_t c = 0; c < 2; ++c)
    for (std::int64_t h = 0; h < 3; ++h)
      for (std::int64_t w = 0; w < 3; ++w) {
        const double expect = std::max(
            r.mem.byArray("x").at({0, c, h, w}) + r.mem.byArray("bias").at({c}),
            0.0);
        EXPECT_NEAR(r.mem.byArray("y").at({0, c, h, w}), expect, 1e-9);
      }
}

TEST(Kernels, RmsNorm) {
  const std::int64_t N = 2, D = 5;
  auto r = runWithRandomInputs(makeRmsNorm(N, D), 9);
  for (std::int64_t i = 0; i < N; ++i) {
    double s = 0;
    for (std::int64_t j = 0; j < D; ++j) {
      const double x = r.mem.byArray("x").at({i, j});
      s += x * x;
    }
    const double inv = 1.0 / std::sqrt(s / D + kEps);
    for (std::int64_t j = 0; j < D; ++j)
      EXPECT_NEAR(r.mem.byArray("y").at({i, j}),
                  r.mem.byArray("x").at({i, j}) * inv, 1e-6);
  }
}

TEST(Kernels, Softmax) {
  const std::int64_t N = 2, M = 6;
  auto r = runWithRandomInputs(makeSoftmax(N, M), 10);
  for (std::int64_t i = 0; i < N; ++i) {
    double mx = -1e300;
    for (std::int64_t j = 0; j < M; ++j)
      mx = std::max(mx, r.mem.byArray("x").at({i, j}));
    double l = 0;
    for (std::int64_t j = 0; j < M; ++j)
      l += std::exp(r.mem.byArray("x").at({i, j}) - mx);
    for (std::int64_t j = 0; j < M; ++j)
      EXPECT_NEAR(r.mem.byArray("y").at({i, j}),
                  std::exp(r.mem.byArray("x").at({i, j}) - mx) / l, 1e-9);
  }
}

TEST(Kernels, Swiglu) {
  const std::int64_t S = 2, D = 3, F = 4;
  auto r = runWithRandomInputs(makeSwiglu(S, D, F), 11);
  for (std::int64_t s = 0; s < S; ++s)
    for (std::int64_t f = 0; f < F; ++f) {
      double g = 0, h = 0;
      for (std::int64_t d = 0; d < D; ++d) {
        g += r.mem.byArray("x").at({s, d}) * r.mem.byArray("W1").at({d, f});
        h += r.mem.byArray("x").at({s, d}) * r.mem.byArray("W3").at({d, f});
      }
      const double silu = g / (1.0 + std::exp(-g));
      EXPECT_NEAR(r.mem.byArray("y").at({s, f}), silu * h, 1e-9);
    }
}

TEST(Kernels, SnitchMicroReference) {
  // axpy
  {
    auto r = runWithRandomInputs(makeAxpy(8), 12);
    for (std::int64_t i = 0; i < 8; ++i)
      EXPECT_NEAR(r.mem.byArray("y").at({i}),
                  2.5 * r.mem.byArray("x").at({i}) + r.mem.byArray("y0").at({i}),
                  1e-12);
  }
  // dot
  {
    auto r = runWithRandomInputs(makeDot(8), 13);
    double acc = 0;
    for (std::int64_t i = 0; i < 8; ++i)
      acc += r.mem.byArray("x").at({i}) * r.mem.byArray("y").at({i});
    EXPECT_NEAR(r.mem.byArray("d").at({0}), acc, 1e-12);
  }
  // sum
  {
    auto r = runWithRandomInputs(makeSum(8), 14);
    double acc = 0;
    for (std::int64_t i = 0; i < 8; ++i) acc += r.mem.byArray("x").at({i});
    EXPECT_NEAR(r.mem.byArray("s").at({0}), acc, 1e-12);
  }
  // conv1d
  {
    auto r = runWithRandomInputs(makeConv1d(10, 3), 15);
    for (std::int64_t i = 0; i < 8; ++i) {
      double acc = 0;
      for (std::int64_t k = 0; k < 3; ++k)
        acc += r.mem.byArray("x").at({i + k}) * r.mem.byArray("w").at({k});
      EXPECT_NEAR(r.mem.byArray("y").at({i}), acc, 1e-12);
    }
  }
  // norm2
  {
    auto r = runWithRandomInputs(makeNorm2(8), 16);
    double acc = 0;
    for (std::int64_t i = 0; i < 8; ++i) {
      const double x = r.mem.byArray("x").at({i});
      acc += x * x;
    }
    EXPECT_NEAR(r.mem.byArray("s").at({0}), std::sqrt(acc), 1e-12);
  }
}

TEST(Kernels, CatalogsComplete) {
  EXPECT_EQ(table3().size(), 16u);  // Table 3 lists 16 operator variants
  EXPECT_GE(snitchMicro().size(), 8u);
  EXPECT_GE(x86Uncommon().size(), 6u);
  EXPECT_NE(findKernel("softmax"), nullptr);
  EXPECT_NE(findKernel("axpy"), nullptr);
  EXPECT_EQ(findKernel("nope"), nullptr);
}

TEST(Kernels, AllSmallBuildersValidate) {
  for (const auto* cat : {&table3(), &snitchMicro(), &x86Uncommon()})
    for (const auto& k : *cat) EXPECT_NO_THROW(k.build_small().validate());
}

}  // namespace
}  // namespace perfdojo::kernels
