file(REMOVE_RECURSE
  "CMakeFiles/gpu_rl_search.dir/gpu_rl_search.cpp.o"
  "CMakeFiles/gpu_rl_search.dir/gpu_rl_search.cpp.o.d"
  "gpu_rl_search"
  "gpu_rl_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gpu_rl_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
