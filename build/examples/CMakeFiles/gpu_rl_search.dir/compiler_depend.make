# Empty compiler generated dependencies file for gpu_rl_search.
# This may be replaced when dependencies are built.
