# Empty dependencies file for softmax_journey.
# This may be replaced when dependencies are built.
