file(REMOVE_RECURSE
  "CMakeFiles/softmax_journey.dir/softmax_journey.cpp.o"
  "CMakeFiles/softmax_journey.dir/softmax_journey.cpp.o.d"
  "softmax_journey"
  "softmax_journey.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/softmax_journey.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
