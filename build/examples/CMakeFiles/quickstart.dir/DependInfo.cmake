
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/quickstart.cpp" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o" "gcc" "examples/CMakeFiles/quickstart.dir/quickstart.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dojo/CMakeFiles/pd_dojo.dir/DependInfo.cmake"
  "/root/repo/build/src/kernels/CMakeFiles/pd_kernels.dir/DependInfo.cmake"
  "/root/repo/build/src/codegen/CMakeFiles/pd_codegen.dir/DependInfo.cmake"
  "/root/repo/build/src/search/CMakeFiles/pd_search.dir/DependInfo.cmake"
  "/root/repo/build/src/verify/CMakeFiles/pd_verify.dir/DependInfo.cmake"
  "/root/repo/build/src/interp/CMakeFiles/pd_interp.dir/DependInfo.cmake"
  "/root/repo/build/src/machines/CMakeFiles/pd_machines.dir/DependInfo.cmake"
  "/root/repo/build/src/transform/CMakeFiles/pd_transform.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/pd_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
