file(REMOVE_RECURSE
  "CMakeFiles/snitch_tuning.dir/snitch_tuning.cpp.o"
  "CMakeFiles/snitch_tuning.dir/snitch_tuning.cpp.o.d"
  "snitch_tuning"
  "snitch_tuning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snitch_tuning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
