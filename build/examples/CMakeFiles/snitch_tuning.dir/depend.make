# Empty dependencies file for snitch_tuning.
# This may be replaced when dependencies are built.
