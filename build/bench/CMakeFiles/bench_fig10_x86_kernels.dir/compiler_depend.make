# Empty compiler generated dependencies file for bench_fig10_x86_kernels.
# This may be replaced when dependencies are built.
