file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_x86_kernels.dir/bench_fig10_x86_kernels.cpp.o"
  "CMakeFiles/bench_fig10_x86_kernels.dir/bench_fig10_x86_kernels.cpp.o.d"
  "bench_fig10_x86_kernels"
  "bench_fig10_x86_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_x86_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
