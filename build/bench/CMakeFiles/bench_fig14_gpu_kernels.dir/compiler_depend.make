# Empty compiler generated dependencies file for bench_fig14_gpu_kernels.
# This may be replaced when dependencies are built.
