file(REMOVE_RECURSE
  "CMakeFiles/bench_fig14_gpu_kernels.dir/bench_fig14_gpu_kernels.cpp.o"
  "CMakeFiles/bench_fig14_gpu_kernels.dir/bench_fig14_gpu_kernels.cpp.o.d"
  "bench_fig14_gpu_kernels"
  "bench_fig14_gpu_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig14_gpu_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
