# Empty compiler generated dependencies file for bench_fig13_mi300a.
# This may be replaced when dependencies are built.
