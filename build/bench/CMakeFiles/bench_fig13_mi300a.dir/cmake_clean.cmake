file(REMOVE_RECURSE
  "CMakeFiles/bench_fig13_mi300a.dir/bench_fig13_mi300a.cpp.o"
  "CMakeFiles/bench_fig13_mi300a.dir/bench_fig13_mi300a.cpp.o.d"
  "bench_fig13_mi300a"
  "bench_fig13_mi300a.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13_mi300a.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
