# Empty dependencies file for bench_fig04_softmax_path.
# This may be replaced when dependencies are built.
