file(REMOVE_RECURSE
  "CMakeFiles/bench_fig04_softmax_path.dir/bench_fig04_softmax_path.cpp.o"
  "CMakeFiles/bench_fig04_softmax_path.dir/bench_fig04_softmax_path.cpp.o.d"
  "bench_fig04_softmax_path"
  "bench_fig04_softmax_path.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_softmax_path.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
