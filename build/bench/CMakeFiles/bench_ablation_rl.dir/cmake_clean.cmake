file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_rl.dir/bench_ablation_rl.cpp.o"
  "CMakeFiles/bench_ablation_rl.dir/bench_ablation_rl.cpp.o.d"
  "bench_ablation_rl"
  "bench_ablation_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
