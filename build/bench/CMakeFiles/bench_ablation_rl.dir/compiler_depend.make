# Empty compiler generated dependencies file for bench_ablation_rl.
# This may be replaced when dependencies are built.
