file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_representation.dir/bench_table2_representation.cpp.o"
  "CMakeFiles/bench_table2_representation.dir/bench_table2_representation.cpp.o.d"
  "bench_table2_representation"
  "bench_table2_representation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_representation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
