# Empty dependencies file for bench_table2_representation.
# This may be replaced when dependencies are built.
