# Empty dependencies file for bench_fig01_gh200.
# This may be replaced when dependencies are built.
