file(REMOVE_RECURSE
  "CMakeFiles/bench_fig01_gh200.dir/bench_fig01_gh200.cpp.o"
  "CMakeFiles/bench_fig01_gh200.dir/bench_fig01_gh200.cpp.o.d"
  "bench_fig01_gh200"
  "bench_fig01_gh200.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_gh200.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
