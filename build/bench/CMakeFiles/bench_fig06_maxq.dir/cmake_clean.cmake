file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_maxq.dir/bench_fig06_maxq.cpp.o"
  "CMakeFiles/bench_fig06_maxq.dir/bench_fig06_maxq.cpp.o.d"
  "bench_fig06_maxq"
  "bench_fig06_maxq.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_maxq.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
