# Empty compiler generated dependencies file for bench_fig06_maxq.
# This may be replaced when dependencies are built.
