# Empty compiler generated dependencies file for bench_fig07_snitch_passes.
# This may be replaced when dependencies are built.
