file(REMOVE_RECURSE
  "CMakeFiles/bench_fig07_snitch_passes.dir/bench_fig07_snitch_passes.cpp.o"
  "CMakeFiles/bench_fig07_snitch_passes.dir/bench_fig07_snitch_passes.cpp.o.d"
  "bench_fig07_snitch_passes"
  "bench_fig07_snitch_passes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig07_snitch_passes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
