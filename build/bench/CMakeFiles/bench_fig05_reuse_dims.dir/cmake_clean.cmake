file(REMOVE_RECURSE
  "CMakeFiles/bench_fig05_reuse_dims.dir/bench_fig05_reuse_dims.cpp.o"
  "CMakeFiles/bench_fig05_reuse_dims.dir/bench_fig05_reuse_dims.cpp.o.d"
  "bench_fig05_reuse_dims"
  "bench_fig05_reuse_dims.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig05_reuse_dims.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
