# Empty dependencies file for bench_fig05_reuse_dims.
# This may be replaced when dependencies are built.
