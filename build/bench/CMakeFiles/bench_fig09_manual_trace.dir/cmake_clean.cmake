file(REMOVE_RECURSE
  "CMakeFiles/bench_fig09_manual_trace.dir/bench_fig09_manual_trace.cpp.o"
  "CMakeFiles/bench_fig09_manual_trace.dir/bench_fig09_manual_trace.cpp.o.d"
  "bench_fig09_manual_trace"
  "bench_fig09_manual_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_manual_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
