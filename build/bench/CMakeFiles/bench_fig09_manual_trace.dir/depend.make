# Empty dependencies file for bench_fig09_manual_trace.
# This may be replaced when dependencies are built.
