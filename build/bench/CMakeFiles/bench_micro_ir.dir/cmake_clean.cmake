file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_ir.dir/bench_micro_ir.cpp.o"
  "CMakeFiles/bench_micro_ir.dir/bench_micro_ir.cpp.o.d"
  "bench_micro_ir"
  "bench_micro_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
