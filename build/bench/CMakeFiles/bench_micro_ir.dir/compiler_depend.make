# Empty compiler generated dependencies file for bench_micro_ir.
# This may be replaced when dependencies are built.
