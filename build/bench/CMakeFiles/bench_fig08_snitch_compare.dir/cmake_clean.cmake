file(REMOVE_RECURSE
  "CMakeFiles/bench_fig08_snitch_compare.dir/bench_fig08_snitch_compare.cpp.o"
  "CMakeFiles/bench_fig08_snitch_compare.dir/bench_fig08_snitch_compare.cpp.o.d"
  "bench_fig08_snitch_compare"
  "bench_fig08_snitch_compare.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig08_snitch_compare.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
