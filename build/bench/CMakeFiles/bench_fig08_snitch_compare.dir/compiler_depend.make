# Empty compiler generated dependencies file for bench_fig08_snitch_compare.
# This may be replaced when dependencies are built.
