# Empty dependencies file for bench_fig12_convergence.
# This may be replaced when dependencies are built.
