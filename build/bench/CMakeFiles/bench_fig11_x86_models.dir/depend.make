# Empty dependencies file for bench_fig11_x86_models.
# This may be replaced when dependencies are built.
