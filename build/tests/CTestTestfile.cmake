# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_support[1]_include.cmake")
include("/root/repo/build/tests/test_index_expr[1]_include.cmake")
include("/root/repo/build/tests/test_ir_core[1]_include.cmake")
include("/root/repo/build/tests/test_parser_printer[1]_include.cmake")
include("/root/repo/build/tests/test_interp[1]_include.cmake")
include("/root/repo/build/tests/test_kernels[1]_include.cmake")
include("/root/repo/build/tests/test_deps[1]_include.cmake")
include("/root/repo/build/tests/test_transforms[1]_include.cmake")
include("/root/repo/build/tests/test_property_semantics[1]_include.cmake")
include("/root/repo/build/tests/test_history[1]_include.cmake")
include("/root/repo/build/tests/test_onnx_coverage[1]_include.cmake")
include("/root/repo/build/tests/test_machines[1]_include.cmake")
include("/root/repo/build/tests/test_codegen[1]_include.cmake")
include("/root/repo/build/tests/test_dojo[1]_include.cmake")
include("/root/repo/build/tests/test_search[1]_include.cmake")
include("/root/repo/build/tests/test_baselines[1]_include.cmake")
include("/root/repo/build/tests/test_rl[1]_include.cmake")
include("/root/repo/build/tests/test_libgen[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
