# Empty dependencies file for test_ir_core.
# This may be replaced when dependencies are built.
