file(REMOVE_RECURSE
  "CMakeFiles/test_ir_core.dir/test_ir_core.cpp.o"
  "CMakeFiles/test_ir_core.dir/test_ir_core.cpp.o.d"
  "test_ir_core"
  "test_ir_core.pdb"
  "test_ir_core[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ir_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
