file(REMOVE_RECURSE
  "CMakeFiles/test_libgen.dir/test_libgen.cpp.o"
  "CMakeFiles/test_libgen.dir/test_libgen.cpp.o.d"
  "test_libgen"
  "test_libgen.pdb"
  "test_libgen[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_libgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
