# Empty compiler generated dependencies file for test_libgen.
# This may be replaced when dependencies are built.
