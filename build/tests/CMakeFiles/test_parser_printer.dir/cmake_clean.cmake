file(REMOVE_RECURSE
  "CMakeFiles/test_parser_printer.dir/test_parser_printer.cpp.o"
  "CMakeFiles/test_parser_printer.dir/test_parser_printer.cpp.o.d"
  "test_parser_printer"
  "test_parser_printer.pdb"
  "test_parser_printer[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_parser_printer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
