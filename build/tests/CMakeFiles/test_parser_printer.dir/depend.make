# Empty dependencies file for test_parser_printer.
# This may be replaced when dependencies are built.
