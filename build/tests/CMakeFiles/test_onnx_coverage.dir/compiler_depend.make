# Empty compiler generated dependencies file for test_onnx_coverage.
# This may be replaced when dependencies are built.
