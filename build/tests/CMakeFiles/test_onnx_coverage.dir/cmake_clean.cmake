file(REMOVE_RECURSE
  "CMakeFiles/test_onnx_coverage.dir/test_onnx_coverage.cpp.o"
  "CMakeFiles/test_onnx_coverage.dir/test_onnx_coverage.cpp.o.d"
  "test_onnx_coverage"
  "test_onnx_coverage.pdb"
  "test_onnx_coverage[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_onnx_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
