# Empty compiler generated dependencies file for test_rl.
# This may be replaced when dependencies are built.
