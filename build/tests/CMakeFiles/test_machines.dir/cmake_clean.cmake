file(REMOVE_RECURSE
  "CMakeFiles/test_machines.dir/test_machines.cpp.o"
  "CMakeFiles/test_machines.dir/test_machines.cpp.o.d"
  "test_machines"
  "test_machines.pdb"
  "test_machines[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
