# Empty compiler generated dependencies file for test_machines.
# This may be replaced when dependencies are built.
