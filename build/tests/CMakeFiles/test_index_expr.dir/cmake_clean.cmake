file(REMOVE_RECURSE
  "CMakeFiles/test_index_expr.dir/test_index_expr.cpp.o"
  "CMakeFiles/test_index_expr.dir/test_index_expr.cpp.o.d"
  "test_index_expr"
  "test_index_expr.pdb"
  "test_index_expr[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_index_expr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
