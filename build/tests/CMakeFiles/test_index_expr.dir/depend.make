# Empty dependencies file for test_index_expr.
# This may be replaced when dependencies are built.
