# Empty dependencies file for test_dojo.
# This may be replaced when dependencies are built.
