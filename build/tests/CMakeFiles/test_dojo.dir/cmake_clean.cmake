file(REMOVE_RECURSE
  "CMakeFiles/test_dojo.dir/test_dojo.cpp.o"
  "CMakeFiles/test_dojo.dir/test_dojo.cpp.o.d"
  "test_dojo"
  "test_dojo.pdb"
  "test_dojo[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_dojo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
