file(REMOVE_RECURSE
  "CMakeFiles/test_property_semantics.dir/test_property_semantics.cpp.o"
  "CMakeFiles/test_property_semantics.dir/test_property_semantics.cpp.o.d"
  "test_property_semantics"
  "test_property_semantics.pdb"
  "test_property_semantics[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_property_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
