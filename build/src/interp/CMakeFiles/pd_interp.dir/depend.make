# Empty dependencies file for pd_interp.
# This may be replaced when dependencies are built.
