file(REMOVE_RECURSE
  "CMakeFiles/pd_interp.dir/interpreter.cpp.o"
  "CMakeFiles/pd_interp.dir/interpreter.cpp.o.d"
  "CMakeFiles/pd_interp.dir/tensor.cpp.o"
  "CMakeFiles/pd_interp.dir/tensor.cpp.o.d"
  "libpd_interp.a"
  "libpd_interp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_interp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
