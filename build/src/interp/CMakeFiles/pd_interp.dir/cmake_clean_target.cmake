file(REMOVE_RECURSE
  "libpd_interp.a"
)
