file(REMOVE_RECURSE
  "libpd_rl.a"
)
