file(REMOVE_RECURSE
  "CMakeFiles/pd_rl.dir/dqn.cpp.o"
  "CMakeFiles/pd_rl.dir/dqn.cpp.o.d"
  "CMakeFiles/pd_rl.dir/embedding.cpp.o"
  "CMakeFiles/pd_rl.dir/embedding.cpp.o.d"
  "CMakeFiles/pd_rl.dir/env.cpp.o"
  "CMakeFiles/pd_rl.dir/env.cpp.o.d"
  "CMakeFiles/pd_rl.dir/nn.cpp.o"
  "CMakeFiles/pd_rl.dir/nn.cpp.o.d"
  "CMakeFiles/pd_rl.dir/perfllm.cpp.o"
  "CMakeFiles/pd_rl.dir/perfllm.cpp.o.d"
  "CMakeFiles/pd_rl.dir/replay.cpp.o"
  "CMakeFiles/pd_rl.dir/replay.cpp.o.d"
  "CMakeFiles/pd_rl.dir/toy_mdp.cpp.o"
  "CMakeFiles/pd_rl.dir/toy_mdp.cpp.o.d"
  "libpd_rl.a"
  "libpd_rl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_rl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
