# Empty dependencies file for pd_rl.
# This may be replaced when dependencies are built.
