file(REMOVE_RECURSE
  "CMakeFiles/pd_transform.dir/annotate.cpp.o"
  "CMakeFiles/pd_transform.dir/annotate.cpp.o.d"
  "CMakeFiles/pd_transform.dir/deps.cpp.o"
  "CMakeFiles/pd_transform.dir/deps.cpp.o.d"
  "CMakeFiles/pd_transform.dir/history.cpp.o"
  "CMakeFiles/pd_transform.dir/history.cpp.o.d"
  "CMakeFiles/pd_transform.dir/loops.cpp.o"
  "CMakeFiles/pd_transform.dir/loops.cpp.o.d"
  "CMakeFiles/pd_transform.dir/memory.cpp.o"
  "CMakeFiles/pd_transform.dir/memory.cpp.o.d"
  "CMakeFiles/pd_transform.dir/reduce.cpp.o"
  "CMakeFiles/pd_transform.dir/reduce.cpp.o.d"
  "CMakeFiles/pd_transform.dir/transform.cpp.o"
  "CMakeFiles/pd_transform.dir/transform.cpp.o.d"
  "libpd_transform.a"
  "libpd_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
