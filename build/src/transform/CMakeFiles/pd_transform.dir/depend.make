# Empty dependencies file for pd_transform.
# This may be replaced when dependencies are built.
