file(REMOVE_RECURSE
  "libpd_transform.a"
)
