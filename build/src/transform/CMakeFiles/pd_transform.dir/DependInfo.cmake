
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/transform/annotate.cpp" "src/transform/CMakeFiles/pd_transform.dir/annotate.cpp.o" "gcc" "src/transform/CMakeFiles/pd_transform.dir/annotate.cpp.o.d"
  "/root/repo/src/transform/deps.cpp" "src/transform/CMakeFiles/pd_transform.dir/deps.cpp.o" "gcc" "src/transform/CMakeFiles/pd_transform.dir/deps.cpp.o.d"
  "/root/repo/src/transform/history.cpp" "src/transform/CMakeFiles/pd_transform.dir/history.cpp.o" "gcc" "src/transform/CMakeFiles/pd_transform.dir/history.cpp.o.d"
  "/root/repo/src/transform/loops.cpp" "src/transform/CMakeFiles/pd_transform.dir/loops.cpp.o" "gcc" "src/transform/CMakeFiles/pd_transform.dir/loops.cpp.o.d"
  "/root/repo/src/transform/memory.cpp" "src/transform/CMakeFiles/pd_transform.dir/memory.cpp.o" "gcc" "src/transform/CMakeFiles/pd_transform.dir/memory.cpp.o.d"
  "/root/repo/src/transform/reduce.cpp" "src/transform/CMakeFiles/pd_transform.dir/reduce.cpp.o" "gcc" "src/transform/CMakeFiles/pd_transform.dir/reduce.cpp.o.d"
  "/root/repo/src/transform/transform.cpp" "src/transform/CMakeFiles/pd_transform.dir/transform.cpp.o" "gcc" "src/transform/CMakeFiles/pd_transform.dir/transform.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/pd_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/pd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
