# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("support")
subdirs("ir")
subdirs("interp")
subdirs("verify")
subdirs("transform")
subdirs("machines")
subdirs("kernels")
subdirs("codegen")
subdirs("dojo")
subdirs("baselines")
subdirs("search")
subdirs("rl")
subdirs("libgen")
subdirs("tools")
