file(REMOVE_RECURSE
  "CMakeFiles/pd_machines.dir/cpumodel.cpp.o"
  "CMakeFiles/pd_machines.dir/cpumodel.cpp.o.d"
  "CMakeFiles/pd_machines.dir/gpusim.cpp.o"
  "CMakeFiles/pd_machines.dir/gpusim.cpp.o.d"
  "CMakeFiles/pd_machines.dir/snitch.cpp.o"
  "CMakeFiles/pd_machines.dir/snitch.cpp.o.d"
  "libpd_machines.a"
  "libpd_machines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_machines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
