file(REMOVE_RECURSE
  "libpd_machines.a"
)
