# Empty compiler generated dependencies file for pd_machines.
# This may be replaced when dependencies are built.
