# CMake generated Testfile for 
# Source directory: /root/repo/src/machines
# Build directory: /root/repo/build/src/machines
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
