file(REMOVE_RECURSE
  "CMakeFiles/pd_kernels.dir/kernels.cpp.o"
  "CMakeFiles/pd_kernels.dir/kernels.cpp.o.d"
  "libpd_kernels.a"
  "libpd_kernels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_kernels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
