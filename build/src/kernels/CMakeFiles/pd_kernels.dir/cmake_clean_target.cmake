file(REMOVE_RECURSE
  "libpd_kernels.a"
)
