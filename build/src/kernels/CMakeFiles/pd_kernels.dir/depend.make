# Empty dependencies file for pd_kernels.
# This may be replaced when dependencies are built.
