file(REMOVE_RECURSE
  "libpd_verify.a"
)
