file(REMOVE_RECURSE
  "CMakeFiles/pd_verify.dir/verifier.cpp.o"
  "CMakeFiles/pd_verify.dir/verifier.cpp.o.d"
  "libpd_verify.a"
  "libpd_verify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_verify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
