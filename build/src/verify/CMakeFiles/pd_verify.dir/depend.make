# Empty dependencies file for pd_verify.
# This may be replaced when dependencies are built.
