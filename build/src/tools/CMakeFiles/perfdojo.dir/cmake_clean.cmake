file(REMOVE_RECURSE
  "CMakeFiles/perfdojo.dir/perfdojo_cli.cpp.o"
  "CMakeFiles/perfdojo.dir/perfdojo_cli.cpp.o.d"
  "perfdojo"
  "perfdojo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/perfdojo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
