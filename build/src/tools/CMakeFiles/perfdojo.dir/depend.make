# Empty dependencies file for perfdojo.
# This may be replaced when dependencies are built.
