file(REMOVE_RECURSE
  "CMakeFiles/pd_codegen.dir/c_codegen.cpp.o"
  "CMakeFiles/pd_codegen.dir/c_codegen.cpp.o.d"
  "libpd_codegen.a"
  "libpd_codegen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_codegen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
