file(REMOVE_RECURSE
  "libpd_codegen.a"
)
