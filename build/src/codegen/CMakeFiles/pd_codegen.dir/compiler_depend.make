# Empty compiler generated dependencies file for pd_codegen.
# This may be replaced when dependencies are built.
