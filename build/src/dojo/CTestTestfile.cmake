# CMake generated Testfile for 
# Source directory: /root/repo/src/dojo
# Build directory: /root/repo/build/src/dojo
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
