file(REMOVE_RECURSE
  "CMakeFiles/pd_dojo.dir/dojo.cpp.o"
  "CMakeFiles/pd_dojo.dir/dojo.cpp.o.d"
  "libpd_dojo.a"
  "libpd_dojo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_dojo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
