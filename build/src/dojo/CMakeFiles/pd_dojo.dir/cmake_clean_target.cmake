file(REMOVE_RECURSE
  "libpd_dojo.a"
)
