# Empty dependencies file for pd_dojo.
# This may be replaced when dependencies are built.
