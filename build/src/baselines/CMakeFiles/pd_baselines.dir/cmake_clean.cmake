file(REMOVE_RECURSE
  "CMakeFiles/pd_baselines.dir/baselines.cpp.o"
  "CMakeFiles/pd_baselines.dir/baselines.cpp.o.d"
  "libpd_baselines.a"
  "libpd_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
