# Empty compiler generated dependencies file for pd_baselines.
# This may be replaced when dependencies are built.
