file(REMOVE_RECURSE
  "libpd_baselines.a"
)
