file(REMOVE_RECURSE
  "CMakeFiles/pd_ir.dir/builder.cpp.o"
  "CMakeFiles/pd_ir.dir/builder.cpp.o.d"
  "CMakeFiles/pd_ir.dir/canonical.cpp.o"
  "CMakeFiles/pd_ir.dir/canonical.cpp.o.d"
  "CMakeFiles/pd_ir.dir/index_expr.cpp.o"
  "CMakeFiles/pd_ir.dir/index_expr.cpp.o.d"
  "CMakeFiles/pd_ir.dir/node.cpp.o"
  "CMakeFiles/pd_ir.dir/node.cpp.o.d"
  "CMakeFiles/pd_ir.dir/onnx_coverage.cpp.o"
  "CMakeFiles/pd_ir.dir/onnx_coverage.cpp.o.d"
  "CMakeFiles/pd_ir.dir/parser.cpp.o"
  "CMakeFiles/pd_ir.dir/parser.cpp.o.d"
  "CMakeFiles/pd_ir.dir/printer.cpp.o"
  "CMakeFiles/pd_ir.dir/printer.cpp.o.d"
  "CMakeFiles/pd_ir.dir/program.cpp.o"
  "CMakeFiles/pd_ir.dir/program.cpp.o.d"
  "CMakeFiles/pd_ir.dir/walk.cpp.o"
  "CMakeFiles/pd_ir.dir/walk.cpp.o.d"
  "libpd_ir.a"
  "libpd_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
