
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/builder.cpp" "src/ir/CMakeFiles/pd_ir.dir/builder.cpp.o" "gcc" "src/ir/CMakeFiles/pd_ir.dir/builder.cpp.o.d"
  "/root/repo/src/ir/canonical.cpp" "src/ir/CMakeFiles/pd_ir.dir/canonical.cpp.o" "gcc" "src/ir/CMakeFiles/pd_ir.dir/canonical.cpp.o.d"
  "/root/repo/src/ir/index_expr.cpp" "src/ir/CMakeFiles/pd_ir.dir/index_expr.cpp.o" "gcc" "src/ir/CMakeFiles/pd_ir.dir/index_expr.cpp.o.d"
  "/root/repo/src/ir/node.cpp" "src/ir/CMakeFiles/pd_ir.dir/node.cpp.o" "gcc" "src/ir/CMakeFiles/pd_ir.dir/node.cpp.o.d"
  "/root/repo/src/ir/onnx_coverage.cpp" "src/ir/CMakeFiles/pd_ir.dir/onnx_coverage.cpp.o" "gcc" "src/ir/CMakeFiles/pd_ir.dir/onnx_coverage.cpp.o.d"
  "/root/repo/src/ir/parser.cpp" "src/ir/CMakeFiles/pd_ir.dir/parser.cpp.o" "gcc" "src/ir/CMakeFiles/pd_ir.dir/parser.cpp.o.d"
  "/root/repo/src/ir/printer.cpp" "src/ir/CMakeFiles/pd_ir.dir/printer.cpp.o" "gcc" "src/ir/CMakeFiles/pd_ir.dir/printer.cpp.o.d"
  "/root/repo/src/ir/program.cpp" "src/ir/CMakeFiles/pd_ir.dir/program.cpp.o" "gcc" "src/ir/CMakeFiles/pd_ir.dir/program.cpp.o.d"
  "/root/repo/src/ir/walk.cpp" "src/ir/CMakeFiles/pd_ir.dir/walk.cpp.o" "gcc" "src/ir/CMakeFiles/pd_ir.dir/walk.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/pd_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
