# Empty compiler generated dependencies file for pd_ir.
# This may be replaced when dependencies are built.
