file(REMOVE_RECURSE
  "libpd_ir.a"
)
