file(REMOVE_RECURSE
  "libpd_support.a"
)
