# Empty compiler generated dependencies file for pd_support.
# This may be replaced when dependencies are built.
