file(REMOVE_RECURSE
  "CMakeFiles/pd_support.dir/rng.cpp.o"
  "CMakeFiles/pd_support.dir/rng.cpp.o.d"
  "CMakeFiles/pd_support.dir/stats.cpp.o"
  "CMakeFiles/pd_support.dir/stats.cpp.o.d"
  "CMakeFiles/pd_support.dir/strings.cpp.o"
  "CMakeFiles/pd_support.dir/strings.cpp.o.d"
  "CMakeFiles/pd_support.dir/table.cpp.o"
  "CMakeFiles/pd_support.dir/table.cpp.o.d"
  "libpd_support.a"
  "libpd_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
