file(REMOVE_RECURSE
  "libpd_search.a"
)
