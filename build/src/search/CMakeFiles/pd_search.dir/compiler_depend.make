# Empty compiler generated dependencies file for pd_search.
# This may be replaced when dependencies are built.
