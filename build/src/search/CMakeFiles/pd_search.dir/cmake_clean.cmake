file(REMOVE_RECURSE
  "CMakeFiles/pd_search.dir/graph.cpp.o"
  "CMakeFiles/pd_search.dir/graph.cpp.o.d"
  "CMakeFiles/pd_search.dir/pass.cpp.o"
  "CMakeFiles/pd_search.dir/pass.cpp.o.d"
  "CMakeFiles/pd_search.dir/search.cpp.o"
  "CMakeFiles/pd_search.dir/search.cpp.o.d"
  "libpd_search.a"
  "libpd_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
