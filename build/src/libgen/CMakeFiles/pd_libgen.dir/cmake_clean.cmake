file(REMOVE_RECURSE
  "CMakeFiles/pd_libgen.dir/libgen.cpp.o"
  "CMakeFiles/pd_libgen.dir/libgen.cpp.o.d"
  "libpd_libgen.a"
  "libpd_libgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pd_libgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
