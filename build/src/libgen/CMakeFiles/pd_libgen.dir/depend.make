# Empty dependencies file for pd_libgen.
# This may be replaced when dependencies are built.
