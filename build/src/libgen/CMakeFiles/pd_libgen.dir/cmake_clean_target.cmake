file(REMOVE_RECURSE
  "libpd_libgen.a"
)
